// Randomized property tests (ctest label `props`) for the join-semilattice
// laws and the ingress-batching path built on them.
//
// Unlike lattice_test's fixed sweeps, these run a seeded generate → check →
// SHRINK loop: when a law fails, the failing tuple is greedily minimized
// (dropping set items / vclock entries, decrementing counters) before it is
// reported, so the failure message carries a near-minimal counterexample
// and the seed that reproduces it. The batcher properties drive a random
// offer/take/requeue/advance op sequence against a plain reference model
// and shrink the op log the same way.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "la/batcher.h"
#include "lattice/delta.h"
#include "lattice/elem.h"
#include "lattice/maxint_elem.h"
#include "lattice/set_elem.h"
#include "lattice/vclock_elem.h"
#include "util/codec.h"
#include "util/rng.h"

namespace bgla::lattice {
namespace {

// ---------------------------------------------------------------------------
// Generators: one per lattice family, plus a mixed-size "batch" generator.

Elem gen_set(Rng& rng) {
  std::set<Item> items;
  const std::size_t k = rng.uniform(0, 6);
  for (std::size_t i = 0; i < k; ++i) {
    items.insert(Item{static_cast<ProcessId>(rng.uniform(0, 4)),
                      rng.uniform(0, 6), rng.uniform(0, 2)});
  }
  return make_set(std::move(items));
}

Elem gen_maxint(Rng& rng) { return make_maxint(rng.uniform(0, 64)); }

Elem gen_vclock(Rng& rng) {
  std::map<ProcessId, std::uint64_t> clock;
  const std::size_t k = rng.uniform(0, 4);
  for (std::size_t i = 0; i < k; ++i) {
    clock[static_cast<ProcessId>(rng.uniform(0, 4))] = rng.uniform(1, 8);
  }
  return make_vclock(std::move(clock));
}

// ---------------------------------------------------------------------------
// Shrinking: immediate simpler variants of one element. Every candidate is
// strictly smaller (fewer items / entries, or a smaller counter), so the
// greedy descent below terminates.

std::vector<Elem> shrink_elem(const Elem& e) {
  std::vector<Elem> out;
  if (e.is_bottom()) return out;
  out.push_back(Elem());  // bottom first: the biggest simplification
  const std::string kind = e.model()->kind();
  if (kind == "set") {
    const std::set<Item>& items = set_items(e);
    for (const Item& drop : items) {
      std::set<Item> fewer = items;
      fewer.erase(drop);
      out.push_back(make_set(std::move(fewer)));
    }
  } else if (kind == "maxint") {
    const std::uint64_t v = maxint_value(e);
    if (v > 0) out.push_back(make_maxint(v / 2));
    if (v > 1) out.push_back(make_maxint(v - 1));
  } else if (kind == "vclock") {
    const auto* m = dynamic_cast<const VClockElem*>(e.model());
    if (m != nullptr) {
      for (const auto& [id, c] : m->clock()) {
        std::map<ProcessId, std::uint64_t> fewer = m->clock();
        fewer.erase(id);
        out.push_back(make_vclock(std::move(fewer)));
        if (c > 1) {
          std::map<ProcessId, std::uint64_t> dec = m->clock();
          dec[id] = c - 1;
          out.push_back(make_vclock(std::move(dec)));
        }
      }
    }
  }
  return out;
}

using Tuple = std::vector<Elem>;
using Property = std::function<bool(const Tuple&)>;

/// Greedily shrinks one failing tuple: keep replacing any position with a
/// simpler variant while the property still fails.
Tuple shrink_tuple(Tuple failing, const Property& prop) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < failing.size() && !progress; ++i) {
      for (const Elem& simpler : shrink_elem(failing[i])) {
        Tuple candidate = failing;
        candidate[i] = simpler;
        if (!prop(candidate)) {
          failing = std::move(candidate);
          progress = true;
          break;
        }
      }
    }
  }
  return failing;
}

std::string tuple_str(const Tuple& t) {
  std::ostringstream os;
  for (std::size_t i = 0; i < t.size(); ++i) {
    os << (i == 0 ? "" : ", ") << static_cast<char>('a' + i) << "="
       << t[i].to_string();
  }
  return os.str();
}

/// Runs `rounds` random tuples through `prop`; the first failure is shrunk
/// and reported with the seed.
void check_property(const char* name, Elem (*gen)(Rng&), std::size_t arity,
                    std::uint64_t seed, const Property& prop,
                    int rounds = 200) {
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    Tuple t;
    for (std::size_t i = 0; i < arity; ++i) t.push_back(gen(rng));
    if (prop(t)) continue;
    const Tuple minimal = shrink_tuple(t, prop);
    FAIL() << name << " failed (seed " << seed << ", round " << round
           << ")\n  original: " << tuple_str(t)
           << "\n  shrunk:   " << tuple_str(minimal);
  }
}

// ---------------------------------------------------------------------------
// Join-semilattice laws, one property each so a violation names the law.

struct Family {
  const char* name;
  Elem (*gen)(Rng&);
};

class SemilatticeProps
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(SemilatticeProps, Associativity) {
  const auto [fam, seed] = GetParam();
  check_property("associativity", fam.gen, 3, seed, [](const Tuple& t) {
    return t[0].join(t[1]).join(t[2]) == t[0].join(t[1].join(t[2]));
  });
}

TEST_P(SemilatticeProps, Commutativity) {
  const auto [fam, seed] = GetParam();
  check_property("commutativity", fam.gen, 2, seed, [](const Tuple& t) {
    return t[0].join(t[1]) == t[1].join(t[0]);
  });
}

TEST_P(SemilatticeProps, Idempotence) {
  const auto [fam, seed] = GetParam();
  check_property("idempotence", fam.gen, 1, seed, [](const Tuple& t) {
    return t[0].join(t[0]) == t[0];
  });
}

TEST_P(SemilatticeProps, JoinIsLeastUpperBound) {
  const auto [fam, seed] = GetParam();
  check_property("least-upper-bound", fam.gen, 3, seed, [](const Tuple& t) {
    const Elem j = t[0].join(t[1]);
    if (!t[0].leq(j) || !t[1].leq(j)) return false;  // upper bound
    // Least: any other upper bound dominates the join.
    if (t[0].leq(t[2]) && t[1].leq(t[2]) && !j.leq(t[2])) return false;
    return true;
  });
}

TEST_P(SemilatticeProps, JoinMonotone) {
  const auto [fam, seed] = GetParam();
  check_property("monotonicity", fam.gen, 3, seed, [](const Tuple& t) {
    if (!t[0].leq(t[1])) return true;  // vacuous
    return t[0].join(t[2]).leq(t[1].join(t[2]));
  });
}

TEST_P(SemilatticeProps, LeqJoinCompatible) {
  const auto [fam, seed] = GetParam();
  check_property("leq-join compatibility", fam.gen, 2, seed,
                 [](const Tuple& t) {
                   return t[0].leq(t[1]) == (t[0].join(t[1]) == t[1]);
                 });
}

TEST_P(SemilatticeProps, BottomIsIdentity) {
  const auto [fam, seed] = GetParam();
  check_property("bottom identity", fam.gen, 1, seed, [](const Tuple& t) {
    return Elem().join(t[0]) == t[0] && t[0].join(Elem()) == t[0] &&
           Elem().leq(t[0]);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SemilatticeProps,
    ::testing::Combine(
        ::testing::Values(Family{"set", &gen_set},
                          Family{"maxint", &gen_maxint},
                          Family{"vclock", &gen_vclock}),
        ::testing::Values<std::uint64_t>(0xb0b1, 0xb0b2, 0xb0b3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param) & 0xf);
    });

// ---------------------------------------------------------------------------
// Batch-join path: a batch's single join must be indistinguishable (as a
// lattice element) from submitting its values one at a time — the property
// that makes ingress batching transparent to every la/spec checker.

TEST(BatchJoinProps, BatchJoinEqualsFoldOfSingletons) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    check_property(
        "batch join = fold join", &gen_set, 5, seed, [](const Tuple& t) {
          Elem fold;
          for (const Elem& v : t) fold = fold.join(v);
          // Any grouping into sub-batches joins to the same element.
          const Elem grouped =
              t[0].join(t[1]).join(t[2].join(t[3]).join(t[4]));
          return fold == grouped;
        });
  }
}

// ---------------------------------------------------------------------------
// la::Batcher vs a reference model, over random op sequences, with op-log
// shrinking. The model is the spec in the batcher.h header restated in the
// simplest possible code.

struct BatchOp {
  enum class Kind { kOffer, kTake, kRequeue, kAdvance } kind = Kind::kOffer;
  Elem value;        // offer / requeue payload
  std::uint64_t dt = 0;  // advance amount
};

struct RefModel {
  la::BatchConfig cfg;
  std::deque<std::pair<Elem, std::uint64_t>> queue;  // value, enqueued_at

  bool offer(const Elem& v, std::uint64_t now) {
    if (cfg.max_queue != 0 && queue.size() >= cfg.max_queue) return false;
    queue.emplace_back(v, now);
    return true;
  }
  void requeue(const Elem& v) {
    if (!v.is_bottom()) queue.emplace_front(v, 0);
  }
  bool release_ready(std::uint64_t now) const {
    if (queue.empty()) return false;
    if (cfg.flush_age == 0) return true;
    if (cfg.max_batch != 0 && queue.size() >= cfg.max_batch) return true;
    return now - queue.front().second >= cfg.flush_age;
  }
  Elem take(std::uint64_t now) {
    Elem batch;
    if (!release_ready(now)) return batch;
    std::uint64_t taken = 0;
    while (!queue.empty() &&
           (cfg.max_batch == 0 || taken < cfg.max_batch)) {
      batch = batch.join(queue.front().first);
      queue.pop_front();
      ++taken;
    }
    return batch;
  }
  Elem pending_join() const {
    Elem all;
    for (const auto& [v, t] : queue) all = all.join(v);
    return all;
  }
};

std::string op_str(const BatchOp& op) {
  switch (op.kind) {
    case BatchOp::Kind::kOffer: return "offer(" + op.value.to_string() + ")";
    case BatchOp::Kind::kTake: return "take";
    case BatchOp::Kind::kRequeue:
      return "requeue(" + op.value.to_string() + ")";
    case BatchOp::Kind::kAdvance:
      return "advance(+" + std::to_string(op.dt) + ")";
  }
  return "?";
}

/// Replays `ops` against both implementations; returns the index of the
/// first divergence, or npos when they agree everywhere.
std::size_t first_divergence(const la::BatchConfig& cfg,
                             const std::vector<BatchOp>& ops,
                             std::string* why) {
  la::Batcher real(cfg);
  RefModel ref{cfg, {}};
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const BatchOp& op = ops[i];
    switch (op.kind) {
      case BatchOp::Kind::kOffer: {
        const bool a = real.offer(op.value, now);
        const bool b = ref.offer(op.value, now);
        if (a != b) {
          *why = "offer accepted=" + std::to_string(a) + " vs ref " +
                 std::to_string(b);
          return i;
        }
        break;
      }
      case BatchOp::Kind::kTake: {
        const Elem a = real.take(now);
        const Elem b = ref.take(now);
        if (!(a == b)) {
          *why = "take " + a.to_string() + " vs ref " + b.to_string();
          return i;
        }
        break;
      }
      case BatchOp::Kind::kRequeue:
        real.requeue(op.value);
        ref.requeue(op.value);
        break;
      case BatchOp::Kind::kAdvance:
        now += op.dt;
        break;
    }
    if (real.depth() != ref.queue.size()) {
      *why = "depth " + std::to_string(real.depth()) + " vs ref " +
             std::to_string(ref.queue.size());
      return i;
    }
    if (!(real.pending_join() == ref.pending_join())) {
      *why = "pending_join " + real.pending_join().to_string() + " vs ref " +
             ref.pending_join().to_string();
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Drops ops one at a time while the divergence persists.
std::vector<BatchOp> shrink_ops(const la::BatchConfig& cfg,
                                std::vector<BatchOp> ops) {
  std::string why;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::vector<BatchOp> fewer = ops;
      fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(i));
      if (first_divergence(cfg, fewer, &why) != static_cast<std::size_t>(-1)) {
        ops = std::move(fewer);
        progress = true;
        break;
      }
    }
  }
  return ops;
}

class BatcherModelProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatcherModelProps, MatchesReferenceModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  // Random config per seed, biased toward small bounds so every trigger
  // actually fires. max_bytes stays 0: the reference model mirrors the
  // size/time triggers, and the byte trigger is covered separately below.
  la::BatchConfig cfg;
  cfg.max_batch = static_cast<std::uint32_t>(rng.uniform(0, 4));
  cfg.max_queue = static_cast<std::uint32_t>(rng.uniform(0, 6));
  cfg.flush_age = rng.uniform(0, 3);

  std::vector<BatchOp> ops;
  for (int i = 0; i < 300; ++i) {
    BatchOp op;
    const std::uint64_t pick = rng.uniform(0, 9);
    if (pick < 4) {
      op.kind = BatchOp::Kind::kOffer;
      op.value = gen_set(rng);
    } else if (pick < 7) {
      op.kind = BatchOp::Kind::kTake;
    } else if (pick < 8) {
      op.kind = BatchOp::Kind::kRequeue;
      op.value = gen_set(rng);
    } else {
      op.kind = BatchOp::Kind::kAdvance;
      op.dt = rng.uniform(1, 3);
    }
    ops.push_back(std::move(op));
  }

  std::string why;
  const std::size_t bad = first_divergence(cfg, ops, &why);
  if (bad == static_cast<std::size_t>(-1)) return;
  const std::vector<BatchOp> minimal = shrink_ops(cfg, ops);
  std::ostringstream os;
  for (const BatchOp& op : minimal) os << "\n    " << op_str(op);
  FAIL() << "batcher diverged from the reference model (seed " << seed
         << ", op " << bad << ": " << why << ")\n  minimal op log ("
         << minimal.size() << " op(s)):" << os.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatcherModelProps,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Direct batcher invariants the model comparison cannot express.

TEST(BatcherProps, NeutralConfigJoinsEverythingPending) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    la::Batcher b;  // neutral: the historical accumulator
    Elem all;
    const std::size_t k = rng.uniform(1, 8);
    for (std::size_t i = 0; i < k; ++i) {
      const Elem v = gen_set(rng);
      ASSERT_TRUE(b.offer(v, i));  // unbounded queue never rejects
      all = all.join(v);
    }
    EXPECT_TRUE(b.pending_join() == all);
    EXPECT_TRUE(b.take(k) == all);  // one batch, everything pending
    EXPECT_TRUE(b.empty());
    EXPECT_TRUE(b.take(k + 1).is_bottom());
  }
}

TEST(BatcherProps, CoverageIsLossless) {
  // Join of all released batches + the residue == join of all offers that
  // were accepted: batching never drops or invents values.
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    la::BatchConfig cfg;
    cfg.max_batch = static_cast<std::uint32_t>(rng.uniform(1, 4));
    cfg.max_queue = static_cast<std::uint32_t>(rng.uniform(4, 10));
    la::Batcher b(cfg);
    Elem accepted, released;
    for (int i = 0; i < 40; ++i) {
      const Elem v = gen_set(rng);
      if (b.offer(v, static_cast<std::uint64_t>(i))) {
        accepted = accepted.join(v);
      }
      if (rng.chance(0.5)) {
        released = released.join(b.take(static_cast<std::uint64_t>(i)));
      }
    }
    EXPECT_TRUE(released.join(b.pending_join()) == accepted);
  }
}

TEST(BatcherProps, FifoOrderWithinBatches) {
  la::BatchConfig cfg;
  cfg.max_batch = 2;
  la::Batcher b(cfg);
  const Elem v1 = make_singleton(1), v2 = make_singleton(2),
             v3 = make_singleton(3);
  ASSERT_TRUE(b.offer(v1, 0));
  ASSERT_TRUE(b.offer(v2, 0));
  ASSERT_TRUE(b.offer(v3, 0));
  EXPECT_TRUE(b.take(0) == v1.join(v2));  // strictly the two oldest
  EXPECT_TRUE(b.take(0) == v3);
  EXPECT_TRUE(b.take(0).is_bottom());
}

TEST(BatcherProps, RequeueBypassesBoundsAndGoesFirst) {
  la::BatchConfig cfg;
  cfg.max_queue = 1;
  cfg.max_batch = 1;
  la::Batcher b(cfg);
  ASSERT_TRUE(b.offer(make_singleton(1), 0));
  EXPECT_FALSE(b.offer(make_singleton(2), 0));  // full: backpressure
  EXPECT_EQ(b.stats().rejected, 1u);
  b.requeue(make_singleton(3));  // recovery path ignores the bound
  EXPECT_EQ(b.depth(), 2u);
  EXPECT_TRUE(b.take(0) == make_singleton(3));  // recovered value first
  b.requeue(Elem());  // bottom is a no-op, not a queue entry
  EXPECT_EQ(b.depth(), 1u);
}

TEST(BatcherProps, FlushAgeHoldsShortBatches) {
  la::BatchConfig cfg;
  cfg.max_batch = 4;
  cfg.flush_age = 10;
  la::Batcher b(cfg);
  ASSERT_TRUE(b.offer(make_singleton(1), 100));
  EXPECT_TRUE(b.take(105).is_bottom());  // young and short: held
  EXPECT_TRUE(b.take(110) == make_singleton(1));  // age trigger fires
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(b.offer(make_singleton(10 + i), 200));
  }
  EXPECT_FALSE(b.take(200).is_bottom());  // size trigger: no hold at full
}

TEST(BatcherProps, ByteBudgetSplitsBatches) {
  const Elem v = make_singleton(1);
  la::BatchConfig cfg;
  cfg.max_bytes = la::elem_encoded_bytes(v);  // one value per batch
  cfg.flush_age = 0;
  la::Batcher b(cfg);
  ASSERT_TRUE(b.offer(make_singleton(1), 0));
  ASSERT_TRUE(b.offer(make_singleton(2), 0));
  EXPECT_TRUE(b.take(0) == make_singleton(1));
  EXPECT_TRUE(b.take(0) == make_singleton(2));
  // A single value over budget still progresses (no wedge).
  la::BatchConfig tiny;
  tiny.max_bytes = 1;
  la::Batcher t(tiny);
  ASSERT_TRUE(t.offer(make_set({Item{0, 1, 0}, Item{0, 2, 0}}), 0));
  EXPECT_FALSE(t.take(0).is_bottom());
}

// ---------------------------------------------------------------------------
// Delta-encoding properties (the lattice half of the wire codec): apply ∘
// diff must be the identity — not just up to lattice equality but on the
// canonical encoding, since the transport promises byte-identical
// reconstruction. Same seeded generate → check → shrink loop as above.

Bytes canon(const Elem& e) {
  Encoder enc;
  e.encode(enc);
  return enc.take();
}

class DeltaProps
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(DeltaProps, ApplyAfterDiffIsByteIdentity) {
  const auto [fam, seed] = GetParam();
  check_property("apply∘diff identity", fam.gen, 2, seed,
                 [](const Tuple& t) {
                   const Elem base = t[0];
                   const Elem cur = t[0].join(t[1]);  // base ≤ cur always
                   Elem d;
                   if (!diff_above(base, cur, &d)) return false;
                   return canon(base.join(d)) == canon(cur);
                 });
}

TEST_P(DeltaProps, DiffSucceedsIffBaseBelow) {
  const auto [fam, seed] = GetParam();
  check_property("diff defined ⟺ base ≤ cur", fam.gen, 2, seed,
                 [](const Tuple& t) {
                   Elem d;
                   const bool ok = diff_above(t[0], t[1], &d);
                   // Same family throughout, so leq is the exact criterion
                   // (modulo the cur-bottom corner the codec never takes).
                   const bool expect =
                       t[0].leq(t[1]) && !(t[1].is_bottom() && !t[0].is_bottom());
                   if (ok != expect) return false;
                   return !ok || canon(t[0].join(d)) == canon(t[1]);
                 });
}

TEST_P(DeltaProps, InterleavedDeltasAndFullStatesConverge) {
  // A monotone chain shipped as an arbitrary interleaving of deltas
  // (against the previous link) and full states must reconstruct every
  // link byte-identically — the invariant that lets the transport fall
  // back to full encodings at any point without resynchronizing.
  const auto [fam, seed] = GetParam();
  Rng rng(seed ^ 0xde17a);
  for (int round = 0; round < 100; ++round) {
    Elem sender;   // the chain being shipped
    Elem receiver; // reconstruction
    for (int step = 0; step < 12; ++step) {
      const Elem prev = sender;
      sender = sender.join(fam.gen(rng));
      if (rng.chance(0.5)) {
        Elem d;
        ASSERT_TRUE(diff_above(prev, sender, &d));
        receiver = receiver.join(d);
      } else {
        receiver = sender;  // full state (also: a compacted snapshot)
      }
      ASSERT_EQ(canon(receiver), canon(sender))
          << fam.name << " diverged (seed " << seed << ", round " << round
          << ", step " << step << ")";
    }
  }
}

TEST_P(DeltaProps, DiffIsMinimalForSets) {
  // For the set family the delta must carry exactly the new items — the
  // whole point of the encoding. (maxint/vclock deltas are scalar-sized
  // by construction.)
  const auto [fam, seed] = GetParam();
  if (std::string(fam.name) != "set") return;
  check_property("set delta = set difference", fam.gen, 2, seed,
                 [](const Tuple& t) {
                   const Elem base = t[0];
                   const Elem cur = t[0].join(t[1]);
                   Elem d;
                   if (!diff_above(base, cur, &d)) return false;
                   if (d.is_bottom()) return base == cur;
                   for (const Item& it : set_items(d)) {
                     if (base.is_bottom()) continue;
                     if (set_items(base).count(it) != 0) return false;
                   }
                   return true;
                 });
}

TEST(DeltaProps, KindMismatchAndNonMonotoneRejected) {
  Rng rng(0xdead);
  const Elem s = gen_set(rng);
  const Elem m = gen_maxint(rng);
  Elem d;
  EXPECT_FALSE(diff_above(s, m, &d));  // kind mismatch
  const Elem a = make_set({Item{0, 1, 0}});
  const Elem b = make_set({Item{0, 2, 0}});
  EXPECT_FALSE(diff_above(a, b, &d));  // base ⊄ cur: non-monotone
  EXPECT_TRUE(diff_above(Elem(), m, &d));  // bottom base: delta is cur
  Encoder e1, e2;
  d.encode(e1);
  m.encode(e2);
  EXPECT_EQ(e1.bytes(), e2.bytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DeltaProps,
    ::testing::Combine(
        ::testing::Values(Family{"set", &gen_set},
                          Family{"maxint", &gen_maxint},
                          Family{"vclock", &gen_vclock}),
        ::testing::Values<std::uint64_t>(0xd0d1, 0xd0d2, 0xd0d3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param) & 0xf);
    });

TEST(BatcherProps, StatsAccount) {
  Rng rng(13);
  la::BatchConfig cfg;
  cfg.max_queue = 3;
  cfg.max_batch = 2;
  la::Batcher b(cfg);
  std::uint64_t accepted = 0, rejected = 0, flushed = 0;
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(0.6)) {
      if (b.offer(gen_set(rng), 0)) ++accepted; else ++rejected;
    } else {
      const std::size_t before = b.depth();
      b.take(0);
      flushed += before - b.depth();
    }
  }
  EXPECT_EQ(b.stats().offered, accepted);
  EXPECT_EQ(b.stats().rejected, rejected);
  EXPECT_EQ(b.stats().values_flushed, flushed);
  EXPECT_EQ(b.stats().offered, b.stats().values_flushed + b.depth());
  EXPECT_LE(b.stats().max_depth, 3u);
}

}  // namespace
}  // namespace bgla::lattice
