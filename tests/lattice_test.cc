// Lattice substrate tests: semilattice laws on every concrete family
// (property-style via parameterized random sweeps), bottom semantics,
// cross-family robustness, chain utilities, and the CRDT adapters with
// the §3.1 set-lattice isomorphism.
#include <gtest/gtest.h>

#include "lattice/chain.h"
#include "lattice/concepts.h"
#include "lattice/crdt.h"
#include "lattice/elem.h"
#include "lattice/maxint_elem.h"
#include "lattice/set_elem.h"
#include "lattice/vclock_elem.h"
#include "util/rng.h"

namespace bgla::lattice {
namespace {

Elem random_set(Rng& rng) {
  std::set<Item> items;
  const std::size_t k = rng.uniform(0, 5);
  for (std::size_t i = 0; i < k; ++i) {
    items.insert(Item{rng.uniform(0, 4), rng.uniform(0, 4), 0});
  }
  return make_set(std::move(items));
}

Elem random_vclock(Rng& rng) {
  std::map<ProcessId, std::uint64_t> clock;
  const std::size_t k = rng.uniform(0, 4);
  for (std::size_t i = 0; i < k; ++i) {
    clock[static_cast<ProcessId>(rng.uniform(0, 3))] = rng.uniform(0, 6);
  }
  return make_vclock(std::move(clock));
}

Elem random_maxint(Rng& rng) { return make_maxint(rng.uniform(0, 50)); }

using ElemGen = Elem (*)(Rng&);

class LatticeLaws : public ::testing::TestWithParam<
                        std::tuple<ElemGen, std::uint64_t>> {};

TEST_P(LatticeLaws, JoinSemilatticeAxioms) {
  auto [gen, seed] = GetParam();
  Rng rng(seed);
  for (int round = 0; round < 50; ++round) {
    const Elem a = gen(rng), b = gen(rng), c = gen(rng);

    // Idempotence, commutativity, associativity.
    EXPECT_TRUE(a.join(a) == a);
    EXPECT_TRUE(a.join(b) == b.join(a));
    EXPECT_TRUE(a.join(b).join(c) == a.join(b.join(c)));

    // Connection between ≤ and ⊕: u ≤ v ⟺ u ⊕ v = v (§3.1).
    EXPECT_EQ(a.leq(b), a.join(b) == b);

    // Join is an upper bound.
    EXPECT_TRUE(a.leq(a.join(b)));
    EXPECT_TRUE(b.leq(a.join(b)));

    // Reflexivity and antisymmetry.
    EXPECT_TRUE(a.leq(a));
    if (a.leq(b) && b.leq(a)) {
      EXPECT_TRUE(a == b);
    }

    // Transitivity.
    if (a.leq(b) && b.leq(c)) {
      EXPECT_TRUE(a.leq(c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, LatticeLaws,
    ::testing::Combine(::testing::Values<ElemGen>(&random_set,
                                                  &random_vclock,
                                                  &random_maxint),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

TEST(Elem, BottomIsUniversalLeast) {
  const Elem bot;
  EXPECT_TRUE(bot.is_bottom());
  for (const Elem& e :
       {make_set({Item{1, 0, 0}}), make_maxint(3),
        make_vclock({{0, 2}})}) {
    EXPECT_TRUE(bot.leq(e));
    EXPECT_FALSE(e.leq(bot));
    EXPECT_TRUE(bot.join(e) == e);
    EXPECT_TRUE(e.join(bot) == e);
  }
  EXPECT_TRUE(bot.leq(bot));
  EXPECT_TRUE(bot == Elem());
}

TEST(Elem, CrossFamilyIncomparableNotCrash) {
  const Elem s = make_set({Item{1, 0, 0}});
  const Elem m = make_maxint(5);
  EXPECT_FALSE(s.leq(m));
  EXPECT_FALSE(m.leq(s));
  EXPECT_FALSE(s == m);
  EXPECT_FALSE(comparable(s, m));
}

TEST(Elem, CrossFamilyJoinThrows) {
  const Elem s = make_set({Item{1, 0, 0}});
  const Elem m = make_maxint(5);
  EXPECT_THROW(s.join(m), CheckError);
}

TEST(Elem, DigestStableAndDiscriminating) {
  const Elem a = make_set({Item{1, 2, 0}, Item{3, 4, 0}});
  const Elem b = make_set({Item{3, 4, 0}, Item{1, 2, 0}});  // same set
  const Elem c = make_set({Item{1, 2, 0}});
  EXPECT_EQ(a.digest(), b.digest());  // canonical order
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(a.digest(), Elem().digest());
}

TEST(Elem, AsWrongFamilyThrows) {
  const Elem s = make_set({Item{1, 0, 0}});
  EXPECT_THROW(s.as<MaxIntElem>(), CheckError);
  EXPECT_THROW(Elem().as<SetElem>(), CheckError);
  EXPECT_EQ(s.as<SetElem>().items().size(), 1u);
}

TEST(SetElem, SubsetOrder) {
  const Elem small = make_set({Item{1, 0, 0}});
  const Elem big = make_set({Item{1, 0, 0}, Item{2, 0, 0}});
  const Elem other = make_set({Item{3, 0, 0}});
  EXPECT_TRUE(small.leq(big));
  EXPECT_FALSE(big.leq(small));
  EXPECT_FALSE(comparable(big, other));
  EXPECT_EQ(big.weight(), 2u);
}

TEST(SetElem, AllItemsPredicate) {
  const Elem e = make_set({Item{1, 10, 0}, Item{2, 20, 0}});
  EXPECT_TRUE(all_items(e, [](const Item& it) { return it.b < 100; }));
  EXPECT_FALSE(all_items(e, [](const Item& it) { return it.b < 15; }));
  EXPECT_TRUE(all_items(Elem(), [](const Item&) { return false; }));
}

TEST(VClock, PointwiseOrder) {
  const Elem a = make_vclock({{0, 1}, {1, 2}});
  const Elem b = make_vclock({{0, 2}, {1, 2}});
  const Elem c = make_vclock({{0, 0}, {1, 5}});
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  EXPECT_FALSE(comparable(b, c));
  EXPECT_EQ(vclock_sum(a.join(c)), 1 + 5);
}

TEST(VClock, ZeroEntriesCanonical) {
  // {0:0} must equal {} (zero entries are not observable).
  const Elem with_zero = make_vclock({{0, 0}});
  const Elem empty = make_vclock({});
  EXPECT_TRUE(with_zero == empty);
  EXPECT_EQ(with_zero.digest(), empty.digest());
}

TEST(MaxInt, TotalOrder) {
  const Elem a = make_maxint(3), b = make_maxint(7);
  EXPECT_TRUE(a.leq(b));
  EXPECT_TRUE(comparable(a, b));
  EXPECT_EQ(maxint_value(a.join(b)), 7u);
}

TEST(Chain, DetectsChainsAndAntichains) {
  std::vector<Elem> chain = {
      make_set({}), make_set({Item{1, 0, 0}}),
      make_set({Item{1, 0, 0}, Item{2, 0, 0}})};
  EXPECT_TRUE(is_chain(chain));
  chain.push_back(make_set({Item{9, 0, 0}}));
  EXPECT_FALSE(is_chain(chain));
  const auto [i, j] = find_incomparable(chain);
  EXPECT_GE(i, 0);
  EXPECT_GT(j, i);
}

TEST(Chain, SortChainOrdersByLattice) {
  std::vector<Elem> elems = {
      make_set({Item{1, 0, 0}, Item{2, 0, 0}}),
      make_set({}),
      make_set({Item{1, 0, 0}}),
  };
  const auto sorted = sort_chain(elems);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_TRUE(sorted[i - 1].leq(sorted[i]));
  }
}

TEST(Chain, NonDecreasing) {
  EXPECT_TRUE(is_non_decreasing({make_set({}), make_set({Item{1, 0, 0}}),
                                 make_set({Item{1, 0, 0}})}));
  EXPECT_FALSE(is_non_decreasing(
      {make_set({Item{1, 0, 0}}), make_set({Item{2, 0, 0}})}));
  EXPECT_TRUE(is_non_decreasing({}));
}

TEST(Crdt, GCounterAddAndMerge) {
  GCounter a(0), b(1);
  a.add(5);
  b.add(7);
  b.add(1);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 8u);
  a.merge(b.state());
  EXPECT_EQ(a.value(), 13u);
  // Merge is idempotent.
  a.merge(b.state());
  EXPECT_EQ(a.value(), 13u);
  // Convergence: merging the other way yields the same state.
  b.merge(a.state());
  EXPECT_TRUE(a.state() == b.state());
}

TEST(Crdt, GCounterSetLatticeIsomorphismPreservesOrder) {
  // §3.1: the embedding into the set lattice preserves ≤ and ⊕.
  GCounter a(0), b(0), c(1);
  a.add(2);
  b.add(3);
  c.add(1);
  const Elem ea = a.as_set_lattice();
  const Elem eb = b.as_set_lattice();
  const Elem ec = c.as_set_lattice();
  EXPECT_TRUE(a.state().leq(b.state()));
  EXPECT_TRUE(ea.leq(eb));  // order preserved
  EXPECT_FALSE(comparable(a.state(), c.state()));
  EXPECT_FALSE(comparable(ea, ec));  // incomparability preserved
  // Join commutes with the embedding.
  GCounter merged(0);
  merged.merge(a.state());
  merged.merge(c.state());
  EXPECT_TRUE(merged.as_set_lattice() == ea.join(ec));
}

TEST(Crdt, GSetBasics) {
  GSet a, b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(9);
  b.merge(a.state());
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.contains(1));
  EXPECT_TRUE(a.state().leq(b.state()));
}

}  // namespace
}  // namespace bgla::lattice

namespace bgla::lattice {
namespace {

// A user-defined static lattice: intervals [lo, hi] under convex hull.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;  // empty when hi < lo

  bool empty() const { return hi < lo; }
  Interval join(const Interval& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
  }
  bool leq(const Interval& o) const {
    if (empty()) return true;
    if (o.empty()) return false;
    return o.lo <= lo && hi <= o.hi;
  }
  bool operator==(const Interval& o) const {
    // All empty representations denote the same (bottom) element.
    if (empty() || o.empty()) return empty() && o.empty();
    return lo == o.lo && hi == o.hi;
  }
};

static_assert(JoinSemilattice<Interval>);
static_assert(JoinSemilattice<Elem>);

TEST(Concepts, GenericAlgorithmsOnUserType) {
  const Interval a{0, 2}, b{5, 9}, c{1, 3};
  EXPECT_TRUE(satisfies_semilattice_laws(a, b, c));
  const Interval hull = join_fold(Interval{}, std::vector{a, b, c});
  EXPECT_EQ(hull, (Interval{0, 9}));
  EXPECT_TRUE(comparable_v(a, hull));
  EXPECT_FALSE(comparable_v(a, b));
  EXPECT_TRUE(is_chain_v(std::vector{Interval{}, a, Interval{0, 3},
                                     Interval{-1, 9}}));
  EXPECT_FALSE(is_chain_v(std::vector{a, b}));
  EXPECT_TRUE(is_non_decreasing_v(std::vector{Interval{}, a, hull}));
  EXPECT_FALSE(is_non_decreasing_v(std::vector{hull, a}));
}

TEST(Concepts, IntervalLawsSweep) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    auto gen = [&rng]() {
      const auto lo = static_cast<std::int64_t>(rng.uniform(0, 10));
      const auto len = static_cast<std::int64_t>(rng.uniform(0, 5)) - 1;
      return Interval{lo, lo + len};
    };
    EXPECT_TRUE(satisfies_semilattice_laws(gen(), gen(), gen()));
  }
}

TEST(Concepts, ElemModelsTheConcept) {
  // The runtime-erased Elem interoperates with the static algorithms.
  const Elem a = make_set({Item{1, 0, 0}});
  const Elem b = make_set({Item{2, 0, 0}});
  const Elem ab = join_fold(Elem(), std::vector{a, b});
  EXPECT_TRUE(a.leq(ab));
  EXPECT_TRUE(satisfies_semilattice_laws(a, b, ab));
  EXPECT_FALSE(is_chain_v(std::vector{a, b}));
  EXPECT_TRUE(is_chain_v(std::vector{Elem(), a, ab}));
}

}  // namespace
}  // namespace bgla::lattice
