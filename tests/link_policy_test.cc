// Unit and property tests for the per-peer link-shaping seam
// (src/net/link_policy.h): the policy-spec / matrix-file parsers, the
// LinkShaper's deterministic seeded decision stream, its jitter and
// bandwidth bounds, and the ReorderBuffer window invariant.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/link_policy.h"

namespace bgla::net {
namespace {

// ---------------------------------------------------------------- parsing --

TEST(LinkPolicyParse, NeutralSpellings) {
  for (const char* spec : {"", "off", "none"}) {
    LinkPolicy p;
    p.latency_ms = 99;  // must be overwritten
    ASSERT_TRUE(parse_link_policy(spec, &p)) << spec;
    EXPECT_TRUE(p.neutral()) << spec;
    EXPECT_EQ(p, LinkPolicy{}) << spec;
  }
}

TEST(LinkPolicyParse, FullSpecRoundTrips) {
  LinkPolicy p;
  ASSERT_TRUE(parse_link_policy(
      "lat=25,jitter=10,loss=0.02,bw=256,reorder=4,reorder_rate=0.1", &p));
  EXPECT_EQ(p.latency_ms, 25u);
  EXPECT_EQ(p.jitter_ms, 10u);
  EXPECT_DOUBLE_EQ(p.loss_rate, 0.02);
  EXPECT_EQ(p.bandwidth_kbps, 256u);
  EXPECT_EQ(p.reorder_window, 4u);
  EXPECT_DOUBLE_EQ(p.reorder_rate, 0.1);

  LinkPolicy q;
  ASSERT_TRUE(parse_link_policy(link_policy_to_string(p), &q));
  EXPECT_EQ(p, q);
}

TEST(LinkPolicyParse, RejectsGarbage) {
  LinkPolicy p;
  EXPECT_FALSE(parse_link_policy("lat=", &p));
  EXPECT_FALSE(parse_link_policy("unknown=3", &p));
  EXPECT_FALSE(parse_link_policy("loss=1.5", &p));
  EXPECT_FALSE(parse_link_policy("loss=-0.1", &p));
  // Reordering needs BOTH a window and a rate.
  EXPECT_FALSE(parse_link_policy("reorder=4", &p));
  EXPECT_FALSE(parse_link_policy("reorder_rate=0.5", &p));
}

TEST(LinkMatrix, LastMatchWinsAndWildcards) {
  LinkMatrix m;
  std::string err;
  ASSERT_TRUE(parse_link_matrix("# comment\n"
                                "* * lat=5\n"
                                "0 * lat=10\n"
                                "0 2 lat=20,loss=0.5\n",
                                &m, &err))
      << err;
  EXPECT_EQ(m.policy_for(1, 2).latency_ms, 5u);   // * *
  EXPECT_EQ(m.policy_for(0, 1).latency_ms, 10u);  // 0 *
  EXPECT_EQ(m.policy_for(0, 2).latency_ms, 20u);  // exact pair
  EXPECT_DOUBLE_EQ(m.policy_for(0, 2).loss_rate, 0.5);
}

TEST(LinkMatrix, BadLineReportsLineNumber) {
  LinkMatrix m;
  std::string err;
  EXPECT_FALSE(parse_link_matrix("* * lat=5\n0 1 lat=\n", &m, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

// ------------------------------------------------------------- the shaper --

LinkPolicy wan_policy() {
  LinkPolicy p;
  p.latency_ms = 5;
  p.jitter_ms = 3;
  p.loss_rate = 0.1;
  return p;
}

/// Same policy + same seed => byte-identical decision stream. This is the
/// property that makes chaos campaigns replayable.
TEST(LinkShaper, SameSeedSameDecisions) {
  LinkShaper s1(wan_policy(), /*seed=*/7);
  LinkShaper s2(wan_policy(), /*seed=*/7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = 1000ull * i;
    const LinkShaper::Decision d1 = s1.shape(128, now, /*reorderable=*/false);
    const LinkShaper::Decision d2 = s2.shape(128, now, /*reorderable=*/false);
    EXPECT_EQ(d1.drop, d2.drop) << i;
    EXPECT_EQ(d1.delay_us, d2.delay_us) << i;
  }
}

TEST(LinkShaper, DifferentSeedsDiverge) {
  LinkShaper s1(wan_policy(), 7);
  LinkShaper s2(wan_policy(), 8);
  bool diverged = false;
  for (int i = 0; i < 1000 && !diverged; ++i) {
    const std::uint64_t now = 1000ull * i;
    const LinkShaper::Decision d1 = s1.shape(128, now, false);
    const LinkShaper::Decision d2 = s2.shape(128, now, false);
    diverged = d1.drop != d2.drop || d1.delay_us != d2.delay_us;
  }
  EXPECT_TRUE(diverged);
}

/// Property: with latency L and jitter J (and no bandwidth cap), every
/// non-dropped frame's delay lies in [L, L+J] milliseconds.
TEST(LinkShaper, JitterBounds) {
  LinkPolicy p;
  p.latency_ms = 10;
  p.jitter_ms = 4;
  LinkShaper s(p, 42);
  bool saw_above_floor = false;
  for (int i = 0; i < 2000; ++i) {
    const LinkShaper::Decision d = s.shape(64, 1000ull * i, false);
    ASSERT_FALSE(d.drop);
    ASSERT_FALSE(d.hold);
    EXPECT_GE(d.delay_us, 10000u) << i;
    EXPECT_LE(d.delay_us, 14000u) << i;
    saw_above_floor = saw_above_floor || d.delay_us > 10000u;
  }
  EXPECT_TRUE(saw_above_floor);  // jitter actually applied
}

TEST(LinkShaper, NeutralPolicyIsTransparent) {
  LinkShaper s(LinkPolicy{}, 1);
  for (int i = 0; i < 100; ++i) {
    const LinkShaper::Decision d = s.shape(1500, 1000ull * i, true);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.hold);
    EXPECT_EQ(d.delay_us, 0u);
  }
  EXPECT_EQ(s.drops(), 0u);
}

/// Loss frequency over a long stream tracks the configured rate (seeded,
/// so this is deterministic — no flaky tolerance needed beyond the fixed
/// stream's own deviation).
TEST(LinkShaper, LossRateTracksPolicy) {
  LinkPolicy p;
  p.loss_rate = 0.25;
  LinkShaper s(p, 1234);
  const int kFrames = 20000;
  int dropped = 0;
  for (int i = 0; i < kFrames; ++i) {
    if (s.shape(64, 1000ull * i, false).drop) ++dropped;
  }
  const double rate = static_cast<double>(dropped) / kFrames;
  EXPECT_NEAR(rate, 0.25, 0.02);
  EXPECT_EQ(s.drops(), static_cast<std::uint64_t>(dropped));
}

/// Bandwidth serialization: frames arriving faster than the cap queue up
/// behind busy_until, so per-frame delay grows linearly with the backlog.
TEST(LinkShaper, BandwidthCapSerializes) {
  LinkPolicy p;
  p.bandwidth_kbps = 8;  // 1000 bytes/sec: a 1000-byte frame takes 1s
  LinkShaper s(p, 1);
  // Three frames at the same instant: delays stack 1s, 2s, 3s.
  const LinkShaper::Decision d1 = s.shape(1000, 0, false);
  const LinkShaper::Decision d2 = s.shape(1000, 0, false);
  const LinkShaper::Decision d3 = s.shape(1000, 0, false);
  EXPECT_EQ(d1.delay_us, 1000000u);
  EXPECT_EQ(d2.delay_us, 2000000u);
  EXPECT_EQ(d3.delay_us, 3000000u);
  // After the line idles past the backlog, delay resets to one frame.
  const LinkShaper::Decision d4 = s.shape(1000, 10000000, false);
  EXPECT_EQ(d4.delay_us, 1000000u);
}

/// Only reorderable (DATA) frames may be held; HELLO/ACK never are.
TEST(LinkShaper, HoldsOnlyReorderableFrames) {
  LinkPolicy p;
  p.reorder_window = 4;
  p.reorder_rate = 1.0;  // hold every eligible frame
  LinkShaper s(p, 9);
  EXPECT_TRUE(s.shape(64, 0, /*reorderable=*/true).hold);
  EXPECT_FALSE(s.shape(64, 0, /*reorderable=*/false).hold);
}

/// Runtime mutation: set_policy changes behaviour immediately, heal()
/// restores the BASE policy (the WAN matrix), not a neutral link.
TEST(LinkShaper, HealRestoresBasePolicy) {
  LinkPolicy base;
  base.latency_ms = 7;
  LinkShaper s(base, 3);
  LinkPolicy storm = base;
  storm.loss_rate = 1.0;
  s.set_policy(storm);
  EXPECT_TRUE(s.shape(64, 0, false).drop);
  s.heal();
  const LinkShaper::Decision d = s.shape(64, 0, false);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.delay_us, 7000u);
  EXPECT_EQ(s.policy(), base);
}

// --------------------------------------------------------- reorder buffer --

/// Property: for any sequence of holds and drains, (a) the buffer never
/// holds more than `window` frames — hold() refuses beyond that, which is
/// what forces the transport to send the frame straight through — and
/// (b) every held frame comes back out exactly once, so shaping can delay
/// or reorder DATA but never lose it.
TEST(ReorderBuffer, WindowBoundAndNoLoss) {
  ReorderBuffer buf(/*window=*/3);
  std::uint64_t rng = 0x1234567;
  std::vector<std::uint32_t> put, got;
  std::uint32_t next = 0;
  for (int step = 0; step < 5000; ++step) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    if (rng % 3 != 0) {
      Bytes frame = {static_cast<std::uint8_t>(next >> 8),
                     static_cast<std::uint8_t>(next & 0xff)};
      if (buf.hold(std::move(frame))) put.push_back(next);
      ++next;
      ASSERT_LE(buf.size(), buf.window());
    } else {
      for (const Bytes& b : buf.drain()) {
        got.push_back((static_cast<std::uint32_t>(b[0]) << 8) | b[1]);
      }
    }
  }
  for (const Bytes& b : buf.drain()) {
    got.push_back((static_cast<std::uint32_t>(b[0]) << 8) | b[1]);
  }
  EXPECT_EQ(got, put);  // drain preserves hold order and loses nothing
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ReorderBuffer, ZeroWindowNeverHolds) {
  ReorderBuffer buf(0);
  EXPECT_FALSE(buf.hold(Bytes{1, 2, 3}));
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ReorderBuffer, SetWindowShrinksFutureHoldsOnly) {
  ReorderBuffer buf(4);
  for (std::uint8_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(buf.hold(Bytes{i}));
  }
  buf.set_window(1);
  EXPECT_FALSE(buf.hold(Bytes{9}));   // over the new window
  EXPECT_EQ(buf.drain().size(), 4u);  // existing frames still all drain
}

}  // namespace
}  // namespace bgla::net
