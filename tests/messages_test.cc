// Wire-format tests: every message type has a deterministic canonical
// encoding, digests discriminate between payloads and types, and
// to_string renders (used in traces).
#include <gtest/gtest.h>

#include "bcast/bracha.h"
#include "bcast/cert_rb.h"
#include "la/gsbs_msgs.h"
#include "la/messages.h"
#include "la/sbs_msgs.h"
#include "lattice/set_elem.h"
#include "rsm/msgs.h"

namespace bgla {
namespace {

using lattice::Elem;
using lattice::Item;
using lattice::make_set;

Elem e1() { return make_set({Item{1, 2, 3}}); }
Elem e2() { return make_set({Item{4, 5, 6}, Item{7, 8, 9}}); }

void expect_canonical(const sim::Message& m) {
  EXPECT_EQ(m.encoded(), m.encoded()) << m.to_string();
  EXPECT_EQ(m.digest(), m.digest());
  EXPECT_FALSE(m.to_string().empty());
  EXPECT_FALSE(m.encoded().empty());
}

TEST(Messages, WtsFamily) {
  const la::DisclosureMsg d(e1());
  const la::AckReqMsg req(e1(), 3);
  const la::AckMsg ack(e1(), 3);
  const la::NackMsg nack(e2(), 3);
  for (const sim::Message* m :
       std::initializer_list<const sim::Message*>{&d, &req, &ack, &nack}) {
    expect_canonical(*m);
    EXPECT_EQ(m->layer(), sim::Layer::kAgreement);
  }
  // Same content, different types → different digests.
  EXPECT_NE(ack.digest(), req.digest());
  // Same type, different ts → different digests.
  EXPECT_NE(la::AckMsg(e1(), 3).digest(), la::AckMsg(e1(), 4).digest());
  EXPECT_NE(la::AckMsg(e1(), 3).digest(), la::AckMsg(e2(), 3).digest());
}

TEST(Messages, GwtsFamily) {
  const la::GDisclosureMsg d(e1(), 2);
  const la::GAckReqMsg req(e1(), 3, 2);
  const la::GAckMsg ack(e1(), 0, 1, 3, 2);
  const la::GNackMsg nack(e2(), 3, 2);
  const la::SubmitMsg sub(e1());
  for (const sim::Message* m : std::initializer_list<const sim::Message*>{
           &d, &req, &ack, &nack, &sub}) {
    expect_canonical(*m);
  }
  EXPECT_NE(la::GDisclosureMsg(e1(), 2).digest(),
            la::GDisclosureMsg(e1(), 3).digest());
  EXPECT_NE(la::GAckMsg(e1(), 0, 1, 3, 2).digest(),
            la::GAckMsg(e1(), 0, 2, 3, 2).digest());
}

TEST(Messages, BrachaWrappers) {
  const bcast::RbKey key{2, 7};
  const auto inner = std::make_shared<la::DisclosureMsg>(e1());
  const bcast::RbSendMsg snd(key, inner);
  const bcast::RbEchoMsg echo(key, inner);
  const bcast::RbReadyMsg ready(key, inner);
  expect_canonical(snd);
  expect_canonical(echo);
  expect_canonical(ready);
  EXPECT_EQ(snd.layer(), sim::Layer::kBroadcast);
  // Send/echo/ready of the same payload must not collide.
  EXPECT_NE(snd.digest(), echo.digest());
  EXPECT_NE(echo.digest(), ready.digest());
  // Different origins/tags must not collide.
  EXPECT_NE(bcast::RbSendMsg({2, 7}, inner).digest(),
            bcast::RbSendMsg({2, 8}, inner).digest());
  EXPECT_NE(bcast::RbSendMsg({2, 7}, inner).digest(),
            bcast::RbSendMsg({3, 7}, inner).digest());
}

TEST(Messages, SbsFamily) {
  crypto::SignatureAuthority auth(4, 1);
  const auto sv = la::make_signed_value(auth.signer_for(0), e1());
  la::SignedValueSet set;
  set.insert(sv);

  const la::SInitMsg init(sv);
  const la::SSafeReqMsg sreq(set);
  const auto sig = auth.signer_for(1).sign(
      la::SSafeAckMsg::signed_payload(set, {}, 1));
  const la::SSafeAckMsg sack(set, {}, 1, sig);

  la::SafeValueSet prop;
  prop.insert(la::SafeValue{
      sv, {std::make_shared<la::SSafeAckMsg>(set, std::vector<la::ConflictPair>{}, 1, sig)}});
  const la::SAckReqMsg areq(prop, 5);
  const la::SAckMsg aack(prop, 5);
  const la::SNackMsg anack(prop, 5);

  for (const sim::Message* m : std::initializer_list<const sim::Message*>{
           &init, &sreq, &sack, &areq, &aack, &anack}) {
    expect_canonical(*m);
  }
  EXPECT_TRUE(sack.verify(auth));
}

TEST(Messages, GsbsFamily) {
  crypto::SignatureAuthority auth(4, 1);
  const auto sb = la::make_signed_batch(auth.signer_for(0), e1(), 3);
  la::SignedBatchSet set;
  set.insert(sb);

  const la::GSInitMsg init(sb);
  const la::GSSafeReqMsg sreq(set, 3);
  const auto sig = auth.signer_for(1).sign(
      la::GSSafeAckMsg::signed_payload(set, {}, 1, 3));
  const la::GSSafeAckMsg sack(set, {}, 1, 3, sig);

  la::SafeBatchSet prop;
  prop.insert(la::SafeBatch{
      sb,
      {std::make_shared<la::GSSafeAckMsg>(
          set, std::vector<std::pair<la::SignedBatch, la::SignedBatch>>{},
          1, 3, sig)}});
  const la::GSAckReqMsg areq(prop, 5, 3);
  const crypto::Digest fp = prop.fingerprint();
  const auto asig =
      auth.signer_for(2).sign(la::GSAckMsg::signed_payload(fp, 0, 5, 3));
  const la::GSAckMsg ack(fp, 0, 5, 3, asig);
  const la::GSNackMsg nack(prop, 5, 3);
  const la::GSDecidedMsg decided(
      prop, 0, 5, 3,
      {std::make_shared<la::GSAckMsg>(fp, 0, 5, 3, asig)});

  for (const sim::Message* m : std::initializer_list<const sim::Message*>{
           &init, &sreq, &sack, &areq, &ack, &nack, &decided}) {
    expect_canonical(*m);
  }
  EXPECT_TRUE(sack.verify(auth));
  EXPECT_TRUE(ack.verify(auth));
}

TEST(Messages, RsmFamily) {
  const rsm::UpdateMsg upd(Item{1, 2, 3});
  const rsm::DecideMsg dec(e1(), 0);
  const rsm::ConfReqMsg creq(e1());
  const rsm::ConfRepMsg crep(e1(), 0);
  for (const sim::Message* m : std::initializer_list<const sim::Message*>{
           &upd, &dec, &creq, &crep}) {
    expect_canonical(*m);
    EXPECT_EQ(m->layer(), sim::Layer::kRsm);
  }
  EXPECT_NE(dec.digest(), crep.digest());
}

TEST(Messages, FaleiroFamily) {
  const la::FAckReqMsg req(e1(), 1);
  const la::FAckMsg ack(e1(), 1);
  const la::FNackMsg nack(e1(), 1);
  for (const sim::Message* m : std::initializer_list<const sim::Message*>{
           &req, &ack, &nack}) {
    expect_canonical(*m);
  }
}

TEST(Messages, TypeIdsAreUnique) {
  // Assemble one instance of every concrete message type and assert the
  // type ids never collide (they partition the digest space).
  crypto::SignatureAuthority auth(4, 1);
  const auto sv = la::make_signed_value(auth.signer_for(0), e1());
  la::SignedValueSet svset;
  svset.insert(sv);
  const auto sb = la::make_signed_batch(auth.signer_for(0), e1(), 0);
  la::SignedBatchSet sbset;
  sbset.insert(sb);
  const auto inner = std::make_shared<la::DisclosureMsg>(e1());
  const auto sig = auth.signer_for(1).sign(Bytes{});

  std::vector<std::shared_ptr<sim::Message>> all = {
      std::make_shared<bcast::CrbSendMsg>(bcast::CrbKey{0, 0}, inner),
      std::make_shared<bcast::CrbEchoMsg>(bcast::CrbKey{0, 0},
                                          crypto::Digest{}, sig),
      std::make_shared<bcast::CrbFinalMsg>(
          bcast::CrbKey{0, 0}, inner, std::vector<crypto::Signature>{}),
      std::make_shared<bcast::RbSendMsg>(bcast::RbKey{0, 0}, inner),
      std::make_shared<bcast::RbEchoMsg>(bcast::RbKey{0, 0}, inner),
      std::make_shared<bcast::RbReadyMsg>(bcast::RbKey{0, 0}, inner),
      std::make_shared<la::DisclosureMsg>(e1()),
      std::make_shared<la::AckReqMsg>(e1(), 0),
      std::make_shared<la::AckMsg>(e1(), 0),
      std::make_shared<la::NackMsg>(e1(), 0),
      std::make_shared<la::GDisclosureMsg>(e1(), 0),
      std::make_shared<la::GAckReqMsg>(e1(), 0, 0),
      std::make_shared<la::GAckMsg>(e1(), 0, 0, 0, 0),
      std::make_shared<la::GNackMsg>(e1(), 0, 0),
      std::make_shared<la::SubmitMsg>(e1()),
      std::make_shared<la::FAckReqMsg>(e1(), 0),
      std::make_shared<la::FAckMsg>(e1(), 0),
      std::make_shared<la::FNackMsg>(e1(), 0),
      std::make_shared<la::SInitMsg>(sv),
      std::make_shared<la::SSafeReqMsg>(svset),
      std::make_shared<la::SSafeAckMsg>(svset,
                                        std::vector<la::ConflictPair>{}, 1,
                                        sig),
      std::make_shared<la::SAckReqMsg>(la::SafeValueSet{}, 0),
      std::make_shared<la::SAckMsg>(la::SafeValueSet{}, 0),
      std::make_shared<la::SNackMsg>(la::SafeValueSet{}, 0),
      std::make_shared<la::GSInitMsg>(sb),
      std::make_shared<la::GSSafeReqMsg>(sbset, 0),
      std::make_shared<la::GSSafeAckMsg>(
          sbset,
          std::vector<std::pair<la::SignedBatch, la::SignedBatch>>{}, 1, 0,
          sig),
      std::make_shared<la::GSAckReqMsg>(la::SafeBatchSet{}, 0, 0),
      std::make_shared<la::GSAckMsg>(crypto::Digest{}, 0, 0, 0, sig),
      std::make_shared<la::GSNackMsg>(la::SafeBatchSet{}, 0, 0),
      std::make_shared<la::GSDecidedMsg>(
          la::SafeBatchSet{}, 0, 0, 0,
          std::vector<std::shared_ptr<const la::GSAckMsg>>{}),
      std::make_shared<rsm::UpdateMsg>(Item{0, 0, 0}),
      std::make_shared<rsm::DecideMsg>(e1(), 0),
      std::make_shared<rsm::ConfReqMsg>(e1()),
      std::make_shared<rsm::ConfRepMsg>(e1(), 0),
  };
  std::set<std::uint32_t> ids;
  for (const auto& m : all) {
    EXPECT_TRUE(ids.insert(m->type_id()).second)
        << "duplicate type id " << m->type_id() << " (" << m->to_string()
        << ")";
  }
}

}  // namespace
}  // namespace bgla
