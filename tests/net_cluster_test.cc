// In-process loopback clusters over real sockets: N SocketTransports on
// 127.0.0.1 (ephemeral ports, exchanged before start, so parallel ctest
// runs never collide), each carrying one protocol endpoint — the socket
// equivalent of the sim integration tests, validated by the same la::spec
// checkers. Depth-based assertions stay in-sim (current_depth() is 0 on
// sockets, the documented determinism boundary); here the checkers get
// decision values only.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "la/gwts.h"
#include "la/sbs.h"
#include "la/spec.h"
#include "la/wts.h"
#include "lattice/set_elem.h"
#include "net/socket_transport.h"
#include "store/replica_store.h"
#include "util/codec.h"

namespace bgla {
namespace {

using lattice::Item;
using lattice::make_set;

/// N loopback transports with all ports bound ephemerally and exchanged.
struct Cluster {
  std::vector<std::unique_ptr<net::SocketTransport>> nodes;

  explicit Cluster(std::uint32_t n, double loss_rate = 0.0,
                   std::uint64_t seed = 42) {
    std::vector<net::PeerAddr> peers(n);
    for (std::uint32_t id = 0; id < n; ++id) {
      peers[id] = net::PeerAddr{id, "127.0.0.1", 0};
    }
    for (std::uint32_t id = 0; id < n; ++id) {
      net::SocketConfig cfg;
      cfg.self = id;
      cfg.peers = peers;
      cfg.num_processes = n;
      cfg.auth_seed = seed;
      cfg.retransmit_every_ms = 10;
      cfg.loss_rate = loss_rate;
      cfg.loss_seed = id + 1;
      nodes.push_back(std::make_unique<net::SocketTransport>(cfg));
      nodes.back()->bind_and_listen();
    }
    for (auto& node : nodes) {
      for (std::uint32_t id = 0; id < n; ++id) {
        node->set_peer_port(id, nodes[id]->port());
      }
    }
  }

  net::SocketTransport& operator[](std::size_t i) { return *nodes[i]; }
  void start_all() {
    for (auto& node : nodes) node->start();
  }
  void stop_all() {
    for (auto& node : nodes) node->stop();
  }
};

/// Polls `pred` under the transport's dispatch lock until true or timeout.
template <typename Pred>
bool wait_until(net::SocketTransport& t, Pred pred,
                std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    {
      auto lock = t.dispatch_lock();
      if (pred()) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(NetCluster, EphemeralPortsAreDistinct) {
  Cluster c(4);
  std::set<std::uint16_t> ports;
  for (auto& node : c.nodes) {
    EXPECT_NE(node->port(), 0);
    ports.insert(node->port());
  }
  EXPECT_EQ(ports.size(), 4u);
  c.stop_all();  // never started: must still be a clean no-op
}

TEST(NetCluster, WtsQuorumDecidesOverLoopback) {
  constexpr std::uint32_t kN = 4;
  la::LaConfig cfg;
  cfg.n = kN;
  cfg.f = 1;

  Cluster c(kN);
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  for (std::uint32_t id = 0; id < kN; ++id) {
    procs.push_back(std::make_unique<la::WtsProcess>(
        c[id], id, cfg, make_set({Item{id, 100 + id, 0}})));
  }
  c.start_all();

  for (std::uint32_t id = 0; id < kN; ++id) {
    EXPECT_TRUE(wait_until(c[id], [&] { return procs[id]->decided(); }))
        << "p" << id << " did not decide";
  }
  c.stop_all();

  std::vector<la::LaView> views;
  for (const auto& p : procs) {
    ASSERT_TRUE(p->decided());
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    v.decision = p->decision().value;
    v.svs = p->svs();
    views.push_back(std::move(v));
  }
  const auto res = la::check_la(views, {}, cfg.f);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

// The acceptance scenario: n=7, f=1 SbS, one replica's OS "process"
// (here: its transport) killed mid-run. The survivors still reach
// pairwise-comparable decisions — messages to the dead peer pile up in
// the sender outboxes (perfect links promise delivery only between
// correct processes) without blocking anyone.
TEST(NetCluster, SbsClusterSurvivesCrashMidRun) {
  constexpr std::uint32_t kN = 7;
  constexpr std::uint32_t kCrashed = 6;
  la::LaConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  // One authority per node, as in a real deployment: every OS process
  // derives identical key material from (n, seed) on its own. Sharing a
  // single instance across dispatch threads would race on its MAC cache.
  std::vector<std::unique_ptr<crypto::SignatureAuthority>> auths;
  for (std::uint32_t id = 0; id < kN; ++id) {
    auths.push_back(
        std::make_unique<crypto::SignatureAuthority>(kN, 42 ^ 0xabcdef));
  }

  Cluster c(kN);
  std::vector<std::unique_ptr<la::SbsProcess>> procs;
  for (std::uint32_t id = 0; id < kN; ++id) {
    procs.push_back(std::make_unique<la::SbsProcess>(
        c[id], id, cfg, *auths[id], make_set({Item{id, 100 + id, 0}})));
  }
  c.start_all();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  c[kCrashed].stop();  // crash: sockets die, no more frames from p6

  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    EXPECT_TRUE(wait_until(c[id], [&] { return procs[id]->decided(); }))
        << "survivor p" << id << " did not decide";
  }
  c.stop_all();

  std::vector<la::LaView> views;
  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    const auto& p = procs[id];
    ASSERT_TRUE(p->decided());
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    v.decision = p->decision().value;
    v.svs = p->proposed_by();
    views.push_back(std::move(v));
  }
  // The crashed process is honest-but-dead; for the checker it is simply
  // not a correct view, and anything of its that survived counts into B.
  const auto res = la::check_la(views, {kCrashed}, cfg.f);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

// Injected frame loss exercises the retransmission + dedup machinery:
// the run must still decide, frames must actually have been dropped, and
// (since ACKs get lost too) some retransmitted DATA frames must have been
// suppressed as duplicates by the receive-side watermark.
TEST(NetCluster, LossyLinksRetransmitUntilDecision) {
  constexpr std::uint32_t kN = 4;
  la::LaConfig cfg;
  cfg.n = kN;
  cfg.f = 1;

  Cluster c(kN, /*loss_rate=*/0.25);
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  for (std::uint32_t id = 0; id < kN; ++id) {
    procs.push_back(std::make_unique<la::WtsProcess>(
        c[id], id, cfg, make_set({Item{id, 200 + id, 0}})));
  }
  c.start_all();

  for (std::uint32_t id = 0; id < kN; ++id) {
    EXPECT_TRUE(wait_until(c[id], [&] { return procs[id]->decided(); }))
        << "p" << id << " did not decide under loss";
  }
  c.stop_all();

  std::uint64_t dropped = 0, dups = 0;
  for (auto& node : c.nodes) {
    dropped += node->frames_dropped();
    dups += node->dups_suppressed();
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(dups, 0u);

  std::vector<la::LaView> views;
  for (const auto& p : procs) {
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    v.decision = p->decision().value;
    v.svs = p->svs();
    views.push_back(std::move(v));
  }
  const auto res = la::check_la(views, {}, cfg.f);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

/// Builds the peer table of an existing cluster (bound ports included) so
/// a replacement transport can take over a crashed node's identity: it
/// rebinds the same port and carries a bumped incarnation so peers reset
/// their dedup state for it.
std::unique_ptr<net::SocketTransport> make_restarted_transport(
    Cluster& c, std::uint32_t self, std::uint64_t incarnation) {
  const std::uint32_t n = static_cast<std::uint32_t>(c.nodes.size());
  net::SocketConfig cfg;
  cfg.self = self;
  cfg.num_processes = n;
  cfg.auth_seed = 42;
  cfg.retransmit_every_ms = 10;
  cfg.incarnation = incarnation;
  for (std::uint32_t id = 0; id < n; ++id) {
    cfg.peers.push_back(net::PeerAddr{id, "127.0.0.1", c[id].port()});
  }
  auto t = std::make_unique<net::SocketTransport>(cfg);
  t->bind_and_listen();
  return t;
}

Bytes latest_state(store::ReplicaStore& st) {
  return st.wal_records().empty() ? st.snapshot() : st.wal_records().back();
}

// Crash-recovery acceptance, in-process edition: an SbS replica's
// transport dies mid-run, and a replacement process is rebuilt from its
// durable store (snapshot+WAL), imports the state, and rejoins over the
// catch-up exchange until it too decides. All four final views — three
// survivors plus the restarted replica — must satisfy the one-shot spec.
TEST(NetCluster, SbsReplicaRestartsFromDiskAndRejoins) {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kVictim = 3;
  la::LaConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  std::vector<std::unique_ptr<crypto::SignatureAuthority>> auths;
  for (std::uint32_t id = 0; id < kN; ++id) {
    auths.push_back(
        std::make_unique<crypto::SignatureAuthority>(kN, 42 ^ 0xabcdef));
  }
  const std::string dir = store::make_temp_dir("bgla-rejoin-");

  Cluster c(kN);
  std::vector<std::unique_ptr<la::SbsProcess>> procs;
  for (std::uint32_t id = 0; id < kN; ++id) {
    procs.push_back(std::make_unique<la::SbsProcess>(
        c[id], id, cfg, *auths[id], make_set({Item{id, 100 + id, 0}})));
  }
  auto st = std::make_unique<store::ReplicaStore>(dir);
  procs[kVictim]->set_persist_hook([&procs, &st] {
    Encoder enc;
    procs[kVictim]->export_state(enc);
    st->persist(BytesView(enc.bytes()));
  });
  c.start_all();  // on_start persists, so the store is never empty

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  c[kVictim].stop();  // kill the victim's "process"

  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    EXPECT_TRUE(wait_until(c[id], [&] { return procs[id]->decided(); }))
        << "survivor p" << id << " did not decide";
  }

  // Restart: reopen the store (bumps the incarnation), rebuild the
  // replica, import, and rejoin on a fresh transport on the same port.
  st = std::make_unique<store::ReplicaStore>(dir);
  const Bytes blob = latest_state(*st);
  ASSERT_FALSE(blob.empty());
  auto t2 = make_restarted_transport(c, kVictim, st->incarnation());
  auto p2 = std::make_unique<la::SbsProcess>(
      *t2, kVictim, cfg, *auths[kVictim],
      make_set({Item{kVictim, 100 + kVictim, 0}}));
  {
    Decoder dec{BytesView(blob)};
    p2->import_state(dec);
  }
  EXPECT_TRUE(p2->recovered());
  t2->start();
  EXPECT_TRUE(wait_until(*t2, [&] { return p2->decided(); }))
      << "restarted replica did not decide";
  c.stop_all();
  t2->stop();

  std::vector<la::LaView> views;
  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    la::LaView v;
    v.id = id;
    v.proposal = procs[id]->proposal();
    v.decision = procs[id]->decision().value;
    v.svs = procs[id]->proposed_by();
    views.push_back(std::move(v));
  }
  la::LaView v;
  v.id = kVictim;
  v.proposal = p2->proposal();
  v.decision = p2->decision().value;
  v.svs = p2->proposed_by();
  views.push_back(std::move(v));
  const auto res = la::check_la(views, {}, cfg.f);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

// Generalized edition: a GWTS replica crashes after the first decided
// round, restarts from disk, rejoins, and then still serves *new*
// submissions — its post-restart value and the survivors' second wave all
// reach everyone's final decision (GLA inclusivity over the merged run).
TEST(NetCluster, GwtsReplicaRestartsFromDiskAndServesNewSubmissions) {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kVictim = 3;
  la::LaConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  const std::string dir = store::make_temp_dir("bgla-rejoin-");

  Cluster c(kN);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (std::uint32_t id = 0; id < kN; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(c[id], id, cfg));
    procs[id]->submit(make_set({Item{id, 300 + id, 0}}));
  }
  auto st = std::make_unique<store::ReplicaStore>(dir);
  procs[kVictim]->set_persist_hook([&procs, &st] {
    Encoder enc;
    procs[kVictim]->export_state(enc);
    st->persist(BytesView(enc.bytes()));
  });
  c.start_all();

  for (std::uint32_t id = 0; id < kN; ++id) {
    EXPECT_TRUE(
        wait_until(c[id], [&] { return !procs[id]->decisions().empty(); }))
        << "p" << id << " did not decide round 1";
  }
  c[kVictim].stop();

  st = std::make_unique<store::ReplicaStore>(dir);
  const Bytes blob = latest_state(*st);
  ASSERT_FALSE(blob.empty());
  auto t2 = make_restarted_transport(c, kVictim, st->incarnation());
  auto p2 = std::make_unique<la::GwtsProcess>(*t2, kVictim, cfg);
  {
    Decoder dec{BytesView(blob)};
    p2->import_state(dec);
  }
  EXPECT_TRUE(p2->recovered());
  EXPECT_FALSE(p2->submitted().empty());  // pre-crash submissions recovered

  // A fresh value submitted to the *recovered* replica before it rejoins.
  const auto fresh = make_set({Item{kVictim, 900, 0}});
  p2->submit(fresh);
  t2->start();

  // Survivors submit a second wave while the victim is rejoining.
  std::vector<lattice::Elem> second(kN);
  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    second[id] = make_set({Item{id, 400 + id, 0}});
    auto lock = c[id].dispatch_lock();
    procs[id]->submit(second[id]);
  }

  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    EXPECT_TRUE(wait_until(c[id], [&] {
      return !procs[id]->decisions().empty() &&
             second[id].leq(procs[id]->decisions().back().value);
    })) << "survivor p"
        << id << "'s second submission never decided";
  }
  EXPECT_TRUE(wait_until(*t2, [&] {
    return !p2->decisions().empty() &&
           fresh.leq(p2->decisions().back().value);
  })) << "recovered replica's fresh submission never decided";
  c.stop_all();
  t2->stop();

  std::vector<la::GlaView> views;
  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    la::GlaView v;
    v.id = id;
    v.submitted = procs[id]->submitted();
    for (const auto& rec : procs[id]->decisions()) {
      v.decisions.push_back(rec.value);
    }
    views.push_back(std::move(v));
  }
  la::GlaView v;
  v.id = kVictim;
  v.submitted = p2->submitted();
  for (const auto& rec : p2->decisions()) v.decisions.push_back(rec.value);
  views.push_back(std::move(v));
  const auto res = la::check_gla(views, lattice::Elem(), 1);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

// Batched + pipelined edition of the restart test: every replica runs a
// bounded ingress batcher with pipelining on, and the victim is killed
// with a batch in flight — several values submitted back-to-back so some
// sit in its queue while a proposal is mid-round. The recovered replica
// must refold queue + in-flight values from the durable state and every
// one of them (plus fresh post-restart traffic) must reach the final
// decisions — batching must not cost a single command across kill -9.
TEST(NetCluster, GwtsBatchedPipelinedSurvivesKillWithBatchInFlight) {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kVictim = 3;
  la::LaConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  cfg.batch.max_batch = 2;
  cfg.batch.max_queue = 16;
  cfg.batch.pipeline = true;
  const std::string dir = store::make_temp_dir("bgla-batch-rejoin-");

  Cluster c(kN);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (std::uint32_t id = 0; id < kN; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(c[id], id, cfg));
    procs[id]->submit(make_set({Item{id, 300 + id, 0}}));
  }
  // The victim gets a burst: max_batch=2 means these cannot all ride one
  // proposal, so at crash time part of the burst is still queued.
  std::vector<lattice::Elem> burst;
  for (std::uint64_t k = 0; k < 5; ++k) {
    burst.push_back(make_set({Item{kVictim, 500 + k, 0}}));
    procs[kVictim]->submit(burst.back());
  }
  auto st = std::make_unique<store::ReplicaStore>(dir);
  procs[kVictim]->set_persist_hook([&procs, &st] {
    Encoder enc;
    procs[kVictim]->export_state(enc);
    st->persist(BytesView(enc.bytes()));
  });
  c.start_all();

  for (std::uint32_t id = 0; id < kN; ++id) {
    EXPECT_TRUE(
        wait_until(c[id], [&] { return !procs[id]->decisions().empty(); }))
        << "p" << id << " did not decide round 1";
  }
  c[kVictim].stop();  // kill -9: queue + in-flight batch die with it

  st = std::make_unique<store::ReplicaStore>(dir);
  const Bytes blob = latest_state(*st);
  ASSERT_FALSE(blob.empty());
  auto t2 = make_restarted_transport(c, kVictim, st->incarnation());
  auto p2 = std::make_unique<la::GwtsProcess>(*t2, kVictim, cfg);
  {
    Decoder dec{BytesView(blob)};
    p2->import_state(dec);
  }
  EXPECT_TRUE(p2->recovered());
  // Everything submitted pre-crash — burst included — came back from disk.
  EXPECT_EQ(p2->submitted().size(), procs[kVictim]->submitted().size());

  const auto fresh = make_set({Item{kVictim, 900, 0}});
  p2->submit(fresh);
  t2->start();

  std::vector<lattice::Elem> second(kN);
  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    second[id] = make_set({Item{id, 400 + id, 0}});
    auto lock = c[id].dispatch_lock();
    procs[id]->submit(second[id]);
  }

  // Every burst value and the fresh one must reach the recovered
  // replica's decisions; survivors' second wave must decide too. That is
  // the linearizable-order claim in lattice form: the decided sets are a
  // chain, and no batched command was dropped or reordered out of it.
  auto burst_decided = [&] {
    if (p2->decisions().empty()) return false;
    const auto& top = p2->decisions().back().value;
    for (const auto& v : burst) {
      if (!v.leq(top)) return false;
    }
    return fresh.leq(top);
  };
  EXPECT_TRUE(wait_until(*t2, burst_decided))
      << "recovered replica's in-flight batch never fully decided";
  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    EXPECT_TRUE(wait_until(c[id], [&] {
      return !procs[id]->decisions().empty() &&
             second[id].leq(procs[id]->decisions().back().value);
    })) << "survivor p"
        << id << "'s second submission never decided";
  }
  c.stop_all();
  t2->stop();

  std::vector<la::GlaView> views;
  for (std::uint32_t id = 0; id < kN - 1; ++id) {
    la::GlaView v;
    v.id = id;
    v.submitted = procs[id]->submitted();
    for (const auto& rec : procs[id]->decisions()) {
      v.decisions.push_back(rec.value);
    }
    views.push_back(std::move(v));
  }
  la::GlaView v;
  v.id = kVictim;
  v.submitted = p2->submitted();
  for (const auto& rec : p2->decisions()) v.decisions.push_back(rec.value);
  views.push_back(std::move(v));
  const auto res = la::check_gla(views, lattice::Elem(), 1);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

}  // namespace
}  // namespace bgla
