// Tests for the metrics registry (obs/registry.h) and the instrumentation
// facade (obs/instrument.h): counter/gauge semantics under concurrency,
// log-bucket histogram quantiles, snapshot merge, and the Prometheus/JSON
// renderings. Labelled "obs;concurrency" so the TSan CI slice exercises
// the concurrent paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/instrument.h"
#include "obs/registry.h"

namespace bgla::obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("bgla_test_events_total");
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(RegistryTest, HandlesAreStableAcrossCreation) {
  Registry reg;
  Counter& a = reg.counter("a");
  Histogram& h = reg.histogram("h");
  // Grow the registry far past any small-buffer threshold; deque-backed
  // storage must keep earlier references valid.
  for (int i = 0; i < 1000; ++i) {
    reg.counter("c" + std::to_string(i)).inc();
    reg.histogram("h" + std::to_string(i)).observe(1);
  }
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(&h, &reg.histogram("h"));
  a.inc(7);
  EXPECT_EQ(reg.counter("a").value(), 7u);
}

TEST(RegistryTest, ConcurrentLookupOfSameNameYieldsOneMetric) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) reg.counter("shared").inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared").value(), 8000u);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST(GaugeTest, SetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("g");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.add(5);
  EXPECT_EQ(g.value(), 12);
}

TEST(HistogramTest, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64u);

  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~0ull);
}

TEST(HistogramTest, CountSumMeanAndQuantileBrackets) {
  Registry reg;
  Histogram& h = reg.histogram("lat_us");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  const Snapshot snap = reg.snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("lat_us");
  EXPECT_EQ(hs.count, 1000u);
  EXPECT_EQ(hs.sum, 500500u);
  EXPECT_DOUBLE_EQ(hs.mean(), 500.5);
  // Log buckets give factor-2 precision: p50 of 1..1000 lies in the bucket
  // covering 500 ([256,511]); p99 and the max land in [512,1023].
  EXPECT_GE(hs.quantile(0.5), 256.0);
  EXPECT_LE(hs.quantile(0.5), 512.0);
  EXPECT_GE(hs.quantile(0.99), 512.0);
  EXPECT_LE(hs.quantile(0.99), 1023.0);
  EXPECT_GE(hs.quantile(1.0), 1000.0);
  EXPECT_LE(hs.quantile(1.0), 1023.0);
  // Quantiles are monotone in q.
  EXPECT_LE(hs.quantile(0.5), hs.quantile(0.9));
  EXPECT_LE(hs.quantile(0.9), hs.quantile(0.99));
  EXPECT_LE(hs.quantile(0.99), hs.quantile(1.0));
}

TEST(HistogramTest, EmptyAndSingleObservation) {
  HistogramSnapshot empty;
  empty.buckets.assign(Histogram::kBuckets, 0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  Registry reg;
  reg.histogram("one").observe(100);
  const HistogramSnapshot hs = reg.snapshot().histograms.at("one");
  EXPECT_EQ(hs.count, 1u);
  EXPECT_EQ(hs.sum, 100u);
  // A single sample answers every quantile from its bucket [64,127].
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GE(hs.quantile(q), 64.0);
    EXPECT_LE(hs.quantile(q), 127.0);
  }
}

TEST(HistogramTest, ConcurrentObserveKeepsExactTotals) {
  Registry reg;
  Histogram& h = reg.histogram("h");
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kIters; ++i) {
        h.observe(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.sum(), (1ull + 2 + 3 + 4) * kIters);
}

TEST(SnapshotTest, MergeAddsCountersMaxesGaugesAddsBuckets) {
  Registry a;
  a.counter("x").inc(5);
  a.gauge("g").set(3);
  a.gauge("only_a").set(-2);
  a.histogram("h").observe(10);
  a.histogram("h").observe(10);

  Registry b;
  b.counter("x").inc(7);
  b.counter("y").inc(1);
  b.gauge("g").set(9);
  b.histogram("h").observe(1000);
  b.histogram("only_b").observe(4);

  Snapshot m = a.snapshot();
  m.merge(b.snapshot());

  EXPECT_EQ(m.counters.at("x"), 12u);
  EXPECT_EQ(m.counters.at("y"), 1u);
  EXPECT_EQ(m.gauges.at("g"), 9);  // max across nodes
  EXPECT_EQ(m.gauges.at("only_a"), -2);
  const HistogramSnapshot& h = m.histograms.at("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 1020u);
  EXPECT_EQ(h.buckets[Histogram::bucket_of(10)], 2u);
  EXPECT_EQ(h.buckets[Histogram::bucket_of(1000)], 1u);
  EXPECT_EQ(m.histograms.at("only_b").count, 1u);

  // Merging the lower gauge back does not regress the maximum.
  Registry c;
  c.gauge("g").set(2);
  m.merge(c.snapshot());
  EXPECT_EQ(m.gauges.at("g"), 9);
}

TEST(SnapshotTest, ConcurrentObserveNeverTearsASnapshot) {
  // The SIGUSR1 dump path (and the /metrics endpoint) snapshots the
  // registry while protocol threads keep observing. The invariant under
  // test: a snapshot's histogram count always equals the sum of the
  // buckets it carries (observe() bumps the bucket first), so quantile()
  // can never walk past the distribution, and the sum can never lag so
  // far that the mean of a constant-valued histogram leaves the bucket.
  Registry reg;
  Histogram& h = reg.histogram("lat_us");
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  constexpr std::uint64_t kValue = 7;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kIters; ++i) h.observe(kValue);
    });
  }
  for (int probe = 0; probe < 200; ++probe) {
    const Snapshot s = reg.snapshot();
    const HistogramSnapshot& hs = s.histograms.at("lat_us");
    std::uint64_t total = 0;
    for (const std::uint64_t b : hs.buckets) total += b;
    ASSERT_EQ(hs.count, total);
    // Every observation is 7, so any consistent quantile sits in the
    // bucket covering 7 ([4,7]).
    if (hs.count > 0) {
      ASSERT_GE(hs.quantile(1.0), 4.0);
      ASSERT_LE(hs.quantile(1.0), 7.0);
    }
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot hs = reg.snapshot().histograms.at("lat_us");
  EXPECT_EQ(hs.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hs.sum, kValue * kThreads * kIters);
}

TEST(SnapshotTest, PrometheusSanitizesNamesAndEscapesLabelValues) {
  Registry reg;
  // Hostile metric name (dots/dashes from a peer hostname) and label
  // values carrying the three characters that break the text exposition.
  reg.counter("bgla.peer-host/frames_total").inc(2);
  reg.counter("bgla_net_frames_recv_total{peer=\"host\nwith\\slash\"}")
      .inc(1);
  reg.counter("bgla_shard_ops_total{shard id=\"3\"}").inc(4);
  reg.counter("bgla_bad_block_total{not labels}").inc(7);
  const std::string text = reg.snapshot().to_prometheus();

  // Name: every non-[a-zA-Z0-9_:] byte became '_'.
  EXPECT_NE(text.find("bgla_peer_host_frames_total 2\n"),
            std::string::npos);
  // Label value: the raw newline and backslash are escaped per the text
  // exposition format, so no sample line is ever split in two.
  EXPECT_NE(
      text.find(
          "bgla_net_frames_recv_total{peer=\"host\\nwith\\\\slash\"} 1"),
      std::string::npos);
  EXPECT_EQ(text.find("host\nwith"), std::string::npos);
  // Label name: the space is sanitized, value untouched.
  EXPECT_NE(text.find("bgla_shard_ops_total{shard_id=\"3\"} 4\n"),
            std::string::npos);
  // A block that does not parse as k="v" pairs is dropped entirely:
  // better a label-less sample than a rejected scrape.
  EXPECT_NE(text.find("bgla_bad_block_total 7\n"), std::string::npos);
}

TEST(SnapshotTest, PrometheusEmitsOneHelpTypePairPerFamily) {
  Registry reg;
  // Three labeled series of one counter family, two of one histogram
  // family: strict scrapers reject duplicated HELP/TYPE headers, so each
  // family must emit exactly one pair no matter how many series it has.
  reg.counter("bgla_net_frames_recv_total{peer=\"1\"}").inc(1);
  reg.counter("bgla_net_frames_recv_total{peer=\"2\"}").inc(1);
  reg.counter("bgla_net_frames_recv_total{peer=\"3\"}").inc(1);
  reg.histogram("bgla_span_dur_us{phase=\"round\"}").observe(5);
  reg.histogram("bgla_span_dur_us{phase=\"quorum\"}").observe(9);
  const std::string text = reg.snapshot().to_prometheus();

  auto count_occurrences = [&text](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_occurrences("# HELP bgla_net_frames_recv_total "), 1u);
  EXPECT_EQ(count_occurrences("# TYPE bgla_net_frames_recv_total "), 1u);
  EXPECT_EQ(count_occurrences("# HELP bgla_span_dur_us "), 1u);
  EXPECT_EQ(count_occurrences("# TYPE bgla_span_dur_us "), 1u);
  // All three counter series and both histogram series still rendered.
  EXPECT_NE(text.find("bgla_net_frames_recv_total{peer=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("bgla_net_frames_recv_total{peer=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("bgla_span_dur_us_count{phase=\"round\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("bgla_span_dur_us_count{phase=\"quorum\"} 1"),
            std::string::npos);
}

TEST(SnapshotTest, PrometheusRenderingPutsSuffixBeforeLabels) {
  Registry reg;
  reg.counter("bgla_test_total").inc(3);
  reg.gauge("bgla_test_depth").set(-1);
  reg.histogram("bgla_test_rtt_us{peer=\"2\"}").observe(8);
  const std::string text = reg.snapshot().to_prometheus();

  EXPECT_NE(text.find("bgla_test_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("bgla_test_depth -1\n"), std::string::npos);
  // _count/_sum go on the base name, before the label block.
  EXPECT_NE(text.find("bgla_test_rtt_us_count{peer=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("bgla_test_rtt_us_sum{peer=\"2\"} 8\n"),
            std::string::npos);
  // Quantile samples append to the existing label block.
  EXPECT_NE(text.find("bgla_test_rtt_us{peer=\"2\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_EQ(text.find("_count{peer=\"2\"}_count"), std::string::npos);
}

TEST(SnapshotTest, JsonRenderingEscapesLabelQuotes) {
  Registry reg;
  reg.counter("plain_total").inc(2);
  publish_backoff_retries(reg, /*peer=*/4, /*attempts=*/9);
  reg.histogram("h").observe(16);
  const std::string json = reg.snapshot().to_json();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"plain_total\":2"), std::string::npos);
  // The embedded label quotes must be JSON-escaped.
  EXPECT_NE(json.find("bgla_net_reconnect_backoff_attempts_total"
                      "{peer=\\\"4\\\"}\":9"),
            std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"count\":1,\"sum\":16"), std::string::npos);
}

TEST(InstrumentTest, NullSinksAreSafeNoOps) {
  Instrument instr(nullptr, nullptr);
  instr.on_send(0, 3);
  instr.on_propose(0, 1, 0);
  instr.on_submit(0, 2);
  instr.on_ack(0, 1);
  instr.on_nack(0, 2);
  instr.on_refine(0, 1, 1);
  instr.on_round_advance(0, 1);
  instr.on_decide(0, 1, 1, 0, 42);
  instr.on_persist(0, 128, 5);
  instr.on_rejoin_start(0);
  instr.on_rejoin_done(0, 1000);
  TraceEvent ev;
  instr.event(std::move(ev));  // must not crash without a writer
}

TEST(InstrumentTest, HooksFeedTheExpectedRegistryNames) {
  Registry reg;
  Instrument instr(&reg, nullptr);
  instr.on_send(1, 10);
  instr.on_propose(1, 7, 0);
  instr.on_submit(1, 3);
  instr.on_ack(1, 2);
  instr.on_ack(1, 3);
  instr.on_nack(1, 4);
  instr.on_refine(1, 7, 1);
  instr.on_round_advance(1, 1);
  instr.on_decide(1, 7, 1, 1, 42);
  instr.on_persist(1, 256, 9);
  instr.on_rejoin_start(1);
  instr.on_rejoin_done(1, 1234);

  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("bgla_proto_msgs_sent_total"), 10u);
  EXPECT_EQ(s.counters.at("bgla_proto_proposals_total"), 1u);
  EXPECT_EQ(s.counters.at("bgla_proto_submitted_values_total"), 3u);
  EXPECT_EQ(s.counters.at("bgla_proto_acks_total"), 2u);
  EXPECT_EQ(s.counters.at("bgla_proto_nacks_total"), 1u);
  EXPECT_EQ(s.counters.at("bgla_proto_refinements_total"), 1u);
  EXPECT_EQ(s.counters.at("bgla_proto_round_advances_total"), 1u);
  EXPECT_EQ(s.counters.at("bgla_proto_decides_total"), 1u);
  EXPECT_EQ(s.counters.at("bgla_proto_rejoins_total"), 1u);
  EXPECT_EQ(s.histograms.at("bgla_proto_decide_latency_us").count, 1u);
  EXPECT_EQ(s.histograms.at("bgla_proto_decide_latency_us").sum, 42u);
  EXPECT_EQ(s.histograms.at("bgla_store_persist_latency_us").sum, 9u);
  EXPECT_EQ(s.histograms.at("bgla_proto_rejoin_latency_us").sum, 1234u);
}

TEST(InstrumentTest, PublishCryptoExportsCacheCounters) {
  Registry reg;
  publish_crypto(reg, /*macs_computed=*/100, /*verify_cache_hits=*/80,
                 /*verify_cache_misses=*/20);
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.gauges.at("bgla_crypto_macs_computed_total"), 100);
  EXPECT_EQ(s.gauges.at("bgla_crypto_verify_cache_hits_total"), 80);
  EXPECT_EQ(s.gauges.at("bgla_crypto_verify_cache_misses_total"), 20);
}

}  // namespace
}  // namespace bgla::obs
