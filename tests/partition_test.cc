// Asynchrony-episode tests: the §3 model allows unbounded delays; the
// partition/churn delay models make that concrete. Every protocol must
// stay safe during a partition and regain liveness after it heals.
#include <gtest/gtest.h>

#include "la/gwts.h"
#include "la/spec.h"
#include "la/wts.h"
#include "lattice/set_elem.h"
#include "rsm/client.h"
#include "rsm/history.h"
#include "rsm/replica.h"
#include "sim/network.h"

namespace bgla {
namespace {

using lattice::Item;
using lattice::make_set;

class PartitionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionSweep, WtsDecidesAfterHeal) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  // 2|2 split (neither side has the n−f = 3 disclosure threshold): no
  // decision can happen before the heal at t = 500.
  sim::Network net(std::make_unique<sim::PartitionDelay>(2, 500),
                   GetParam(), 4);
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::WtsProcess>(
        net, id, cfg, make_set({Item{id, 100 + id, 0}})));
  }
  const auto rr = net.run();
  EXPECT_TRUE(rr.quiescent);

  std::vector<la::LaView> views;
  for (const auto& p : procs) {
    ASSERT_TRUE(p->decided()) << "p" << p->id();
    EXPECT_GE(p->decision().time, 500u)
        << "decided across an open partition?!";
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    v.decision = p->decision().value;
    v.svs = p->svs();
    views.push_back(std::move(v));
  }
  const auto res = la::check_la(views, {}, cfg.f);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

TEST_P(PartitionSweep, GwtsRoundsSurviveChurn) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  // 1|3 split opening for 60 of every 150 ticks: the majority side keeps
  // meeting quorums; the isolated process must catch up repeatedly.
  sim::Network net(std::make_unique<sim::ChurnDelay>(1, 150, 60),
                   GetParam(), 4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
  }
  for (auto& p : procs) {
    p->set_decide_hook(
        [&](const la::GwtsProcess&, const la::DecisionRecord&) {
          for (auto& q : procs) {
            if (q->decisions().size() < 4) return;
            if (q->submitted().empty()) return;  // injection not arrived
            const auto own = lattice::join_all(q->submitted());
            if (!own.leq(q->decisions().back().value)) return;
          }
          net.request_stop();
        });
  }
  for (ProcessId id = 0; id < 4; ++id) {
    net.inject(id, id,
               std::make_shared<la::SubmitMsg>(
                   make_set({Item{id, 1, 0}})),
               30 + 40 * id);
  }
  const auto rr = net.run(20'000'000);
  EXPECT_TRUE(rr.stopped) << "GLA stalled under churn";

  std::vector<la::GlaView> views;
  for (const auto& p : procs) {
    la::GlaView v;
    v.id = p->id();
    v.submitted = p->submitted();
    for (const auto& d : p->decisions()) v.decisions.push_back(d.value);
    views.push_back(std::move(v));
  }
  const auto res = la::check_gla(views, lattice::Elem(), 4);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

TEST_P(PartitionSweep, RsmOpsCompleteAfterHeal) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::PartitionDelay>(2, 400),
                   GetParam(), 4 + 1);
  std::vector<std::unique_ptr<rsm::Replica>> replicas;
  for (ProcessId id = 0; id < 4; ++id) {
    replicas.push_back(
        std::make_unique<rsm::Replica>(net, id, cfg, 4, 1));
  }
  rsm::Client client(net, 4, 4, 1,
                     {rsm::Op::update(5), rsm::Op::read()});
  client.set_op_hook([&](const rsm::Client& c, const rsm::OpRecord&) {
    if (c.done()) net.request_stop();
  });
  const auto rr = net.run(20'000'000);
  EXPECT_TRUE(rr.stopped) << "client ops stalled";
  const auto check = rsm::check_history({client.history()});
  EXPECT_TRUE(check.ok()) << check.diagnostic;
  EXPECT_EQ(rsm::counter_value(client.history().back().read_value), 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweep,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5));

TEST(PartitionModel, CrossTrafficHeldUntilHeal) {
  sim::PartitionDelay d(2, 100);
  Rng rng(1);
  // Crossing before the heal: arrival lands after t = 100.
  EXPECT_GE(50 + d.delay(0, 3, 50, rng), 100u);
  // Same side: fast.
  EXPECT_LE(d.delay(0, 1, 50, rng), 3u);
  // After the heal: fast.
  EXPECT_LE(d.delay(0, 3, 200, rng), 3u);
}

TEST(ChurnModel, PeriodicCut) {
  sim::ChurnDelay d(1, 100, 40);
  Rng rng(1);
  // Inside the open window, crossing traffic waits for the close.
  EXPECT_GE(10 + d.delay(0, 2, 10, rng), 40u);
  // Outside the window, crossing traffic is fast.
  EXPECT_LE(d.delay(0, 2, 60, rng), 3u);
  // Non-crossing always fast.
  EXPECT_LE(d.delay(2, 3, 10, rng), 3u);
}

}  // namespace
}  // namespace bgla
