// Handler-level protocol tests: a scripted driver injects hand-crafted
// (including malformed/hostile) messages into real protocol processes and
// asserts the exact state-machine reaction — the SAFE() buffering, ts
// discipline, quorum counting, Safe_r gating and authenticity checks that
// the sweep tests only exercise implicitly.
#include <gtest/gtest.h>

#include <functional>

#include "la/gwts.h"
#include "la/wts.h"
#include "lattice/set_elem.h"
#include "sim/network.h"

namespace bgla {
namespace {

using la::Elem;
using lattice::Item;
using lattice::make_set;

/// A fully scriptable participant.
class Driver : public sim::Process {
 public:
  Driver(sim::Network& net, ProcessId id) : sim::Process(net, id) {}

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    received.emplace_back(from, msg);
  }

  using sim::Process::send;  // expose for tests

  std::vector<std::pair<ProcessId, sim::MessagePtr>> received;

  template <typename T>
  std::vector<const T*> received_of() const {
    std::vector<const T*> out;
    for (const auto& [from, msg] : received) {
      if (const auto* m = dynamic_cast<const T*>(msg.get())) {
        out.push_back(m);
      }
    }
    return out;
  }
};

Elem val(std::uint64_t x) { return make_set({Item{x, 0, 0}}); }

// --------------------------------------------------------------- WTS ----

class WtsUnit : public ::testing::Test {
 protected:
  // Network of 4: processes 0..2 are real WTS, 3 is the driver.
  WtsUnit() {
    cfg_.n = 4;
    cfg_.f = 1;
    net_ = std::make_unique<sim::Network>(
        std::make_unique<sim::FixedDelay>(1), 1, 4);
    for (ProcessId id = 0; id < 3; ++id) {
      procs_.push_back(std::make_unique<la::WtsProcess>(
          *net_, id, cfg_, val(100 + id)));
    }
    driver_ = std::make_unique<Driver>(*net_, 3);
  }

  la::LaConfig cfg_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<la::WtsProcess>> procs_;
  std::unique_ptr<Driver> driver_;
};

TEST_F(WtsUnit, UnsafeAckReqStaysBufferedUntilDisclosed) {
  // The driver proposes a value nobody disclosed; correct acceptors must
  // neither ack nor nack it, ever (it never becomes safe).
  net_->inject(3, 0, std::make_shared<la::AckReqMsg>(val(999), 0), 1);
  net_->run();
  // Process 0 decided its own agreement, but never answered the bogus
  // request: no ack/nack arrived back at the driver referencing val(999).
  for (const auto* ack : driver_->received_of<la::AckMsg>()) {
    EXPECT_FALSE(val(999).leq(ack->accepted));
  }
  for (const auto* nack : driver_->received_of<la::NackMsg>()) {
    EXPECT_FALSE(val(999).leq(nack->accepted));
  }
  // But safety/liveness of the honest agreement is untouched.
  for (const auto& p : procs_) EXPECT_TRUE(p->decided());
}

TEST_F(WtsUnit, ByzAcksWithForeignTsNeverCount) {
  // Spray acks with a future ts at process 0 before anything else; they
  // must not let it decide before its own proposal earns a real quorum.
  for (int i = 0; i < 10; ++i) {
    net_->inject(3, 0, std::make_shared<la::AckMsg>(val(100), 777), 1);
  }
  net_->run();
  ASSERT_TRUE(procs_[0]->decided());
  // The decision carries all three correct proposals — it went through
  // the real protocol rather than the fake acks.
  for (ProcessId id = 0; id < 3; ++id) {
    EXPECT_TRUE(val(100 + id).leq(procs_[0]->decision().value));
  }
}

TEST_F(WtsUnit, AcceptorNacksWithPreUpdateSet) {
  // Alg 2 L11-12: the nack carries the acceptor's Accepted_set *before*
  // absorbing the rejected proposal. Drive an acceptor directly: first
  // make it accept {a}; then send an incomparable safe proposal {b} and
  // check the nack contains {a}, not {a, b}.
  net_->run();  // let the honest agreement finish: everything disclosed
  const Elem a = val(100);  // p0's value: in everyone's SvS
  const Elem b = val(101);  // p1's value
  // Process 2 already holds some accepted set ⊇ {a,b...}; craft fresh
  // around it: send the full svs join first (acks), then a subset (nack).
  const Elem full = procs_[2]->svs_join();
  net_->inject(3, 2, std::make_shared<la::AckReqMsg>(full, 5), 1000);
  net_->run();
  driver_->received.clear();
  net_->inject(3, 2, std::make_shared<la::AckReqMsg>(a, 6), 2000);
  net_->run();
  const auto nacks = driver_->received_of<la::NackMsg>();
  ASSERT_EQ(nacks.size(), 1u);
  EXPECT_TRUE(nacks[0]->accepted == full);  // pre-update value echoed
  (void)b;
}

TEST_F(WtsUnit, AcceptorAcksMonotoneProposals) {
  net_->run();
  const Elem full = procs_[2]->svs_join();
  driver_->received.clear();
  net_->inject(3, 2, std::make_shared<la::AckReqMsg>(full, 9), 1000);
  net_->run();
  const auto acks = driver_->received_of<la::AckMsg>();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0]->accepted == full);
  EXPECT_EQ(acks[0]->ts, 9u);
}

TEST_F(WtsUnit, DuplicateAcksFromSameSenderCountOnce) {
  // 3 correct processes cannot decide with quorum 3 if one of the acks is
  // a duplicate — exercised by the driver impersonating an acceptor that
  // acks twice. We verify via the ack_set semantics: a fresh proposal by
  // the driver is irrelevant; instead assert on protocol decision depth
  // (it waited for three *distinct* acceptors).
  net_->run();
  for (const auto& p : procs_) {
    ASSERT_TRUE(p->decided());
  }
  // With FixedDelay(1) and no Byzantine interference the decision depth
  // is exactly 5 (3 RB + request + ack) — a duplicate-counting bug would
  // have decided at depth ≤ 4 via self+driver duplicates.
  for (const auto& p : procs_) {
    EXPECT_EQ(p->decision().depth, 5u);
  }
}

// -------------------------------------------------------------- GWTS ----

class GwtsUnit : public ::testing::Test {
 protected:
  GwtsUnit() {
    cfg_.n = 4;
    cfg_.f = 1;
    net_ = std::make_unique<sim::Network>(
        std::make_unique<sim::FixedDelay>(1), 1, 4);
    for (ProcessId id = 0; id < 3; ++id) {
      procs_.push_back(std::make_unique<la::GwtsProcess>(*net_, id, cfg_));
    }
    driver_ = std::make_unique<Driver>(*net_, 3);
    // Cap rounds so runs terminate.
    for (auto& p : procs_) {
      p->set_decide_hook(
          [this](const la::GwtsProcess&, const la::DecisionRecord&) {
            for (auto& q : procs_) {
              if (q->decisions().size() < 3) return;
            }
            net_->request_stop();
          });
    }
  }

  la::LaConfig cfg_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<la::GwtsProcess>> procs_;
  std::unique_ptr<Driver> driver_;
};

TEST_F(GwtsUnit, FutureRoundAckReqIsGatedBySafeR) {
  // A request for round 50 must never be answered (round 50 never gets a
  // legitimate end in this short run).
  net_->inject(3, 0,
               std::make_shared<la::GAckReqMsg>(val(999), 1, 50), 1);
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  for (const auto* nack : driver_->received_of<la::GNackMsg>()) {
    EXPECT_NE(nack->round, 50u);
  }
  // And Safe_r stayed in the legitimate range.
  for (const auto& p : procs_) {
    EXPECT_LT(p->safe_round(), 10u);
  }
}

TEST_F(GwtsUnit, PointToPointGAckIsIgnored) {
  // Acks must come through the reliable broadcast; a raw point-to-point
  // GAck claiming quorum-making acceptance is dropped. If it were
  // counted, the forged (value, dest, ts, round) key could reach quorum
  // with only f real acks.
  for (ProcessId fake_acceptor = 0; fake_acceptor < 4; ++fake_acceptor) {
    net_->inject(3, 0,
                 std::make_shared<la::GAckMsg>(val(0), 0, fake_acceptor,
                                               1, 0),
                 1);
  }
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  // val(0) was never disclosed, so it can never be decided.
  for (const auto& p : procs_) {
    for (const auto& d : p->decisions()) {
      EXPECT_FALSE(val(0).leq(d.value));
    }
  }
}

TEST_F(GwtsUnit, DisclosureWithMismatchedTagDropped) {
  // A disclosure whose RB tag does not match its claimed round must not
  // enter SvS (the tag == disclosure_tag(round) rule stops
  // double-disclosure through the tag space). Inject a raw RB_SEND with
  // tag 0 but a round-1 payload; Bracha delivers it (the instance is
  // valid) but GwtsProcess must reject the mismatch at delivery.
  const auto bogus = std::make_shared<bcast::RbSendMsg>(
      bcast::RbKey{3, /*tag=*/0},
      std::make_shared<la::GDisclosureMsg>(val(321), /*round=*/1));
  for (ProcessId to = 0; to < 3; ++to) net_->inject(3, to, bogus, 1);
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  // Even though Bracha delivered it (valid instance), the round/tag
  // mismatch keeps it out of every SvS and hence out of every decision.
  for (const auto& p : procs_) {
    for (const auto& d : p->decisions()) {
      EXPECT_FALSE(val(321).leq(d.value));
    }
  }
}

TEST_F(GwtsUnit, HonestDisclosureViaDriverIsAccepted) {
  // Control for the previous test: same injection with a *matching* tag
  // must be included in decisions (driver acts as an honest-ish discloser
  // for round 0 — tag 0 = disclosure_tag(0)).
  const auto good = std::make_shared<bcast::RbSendMsg>(
      bcast::RbKey{3, /*tag=*/0},
      std::make_shared<la::GDisclosureMsg>(val(555), /*round=*/0));
  for (ProcessId to = 0; to < 3; ++to) net_->inject(3, to, good, 1);
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  for (const auto& p : procs_) {
    EXPECT_TRUE(val(555).leq(p->decisions().back().value))
        << "p" << p->id();
  }
}

TEST_F(GwtsUnit, DoubleDisclosureSameRoundIgnored) {
  // Two RB instances cannot exist for the same (origin, tag); a second
  // disclosure for round 0 under a *different* tag is rejected by the
  // tag == disclosure_tag(round) rule. Inject both; only the canonical
  // one may be decided.
  const auto good = std::make_shared<bcast::RbSendMsg>(
      bcast::RbKey{3, 0},
      std::make_shared<la::GDisclosureMsg>(val(501), 0));
  const auto second = std::make_shared<bcast::RbSendMsg>(
      bcast::RbKey{3, /*tag=*/4},  // tag of round 2, claiming round 0
      std::make_shared<la::GDisclosureMsg>(val(502), 0));
  for (ProcessId to = 0; to < 3; ++to) {
    net_->inject(3, to, good, 1);
    net_->inject(3, to, second, 1);
  }
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  for (const auto& p : procs_) {
    EXPECT_TRUE(val(501).leq(p->decisions().back().value));
    for (const auto& d : p->decisions()) {
      EXPECT_FALSE(val(502).leq(d.value));
    }
  }
}

}  // namespace
}  // namespace bgla
