// RSM (§7) tests: the six properties of §7.1 across sweeps, Byzantine
// replicas (fake deciders), Byzantine clients (Lemma 12), counter
// semantics, confirmation-step safety, and checker self-tests with
// synthetic histories.
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "rsm/byz_rsm.h"
#include "rsm/history.h"
#include "rsm/replica.h"

namespace bgla {
namespace {

using harness::RsmScenario;
using harness::Sched;
using lattice::Item;
using rsm::Op;
using rsm::OpRecord;

struct SweepParam {
  std::uint32_t n;
  std::uint32_t f;
  std::uint32_t byz_replicas;
  bool byz_client;
  Sched sched;
  std::uint64_t seed;
};

class RsmSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RsmSweep, PropertiesHold) {
  const SweepParam p = GetParam();
  RsmScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_replicas = p.byz_replicas;
  sc.with_byz_client = p.byz_client;
  sc.sched = p.sched;
  sc.seed = p.seed;
  sc.num_clients = 2;
  sc.ops_per_client = 4;
  const auto rep = harness::run_rsm(sc);
  EXPECT_TRUE(rep.completed) << "ops did not all complete";
  EXPECT_TRUE(rep.check.ok()) << rep.check.diagnostic;
  EXPECT_TRUE(rep.linearization.linearizable)
      << rep.linearization.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(
    Clean, RsmSweep,
    ::testing::Values(
        SweepParam{4, 1, 0, false, Sched::kUniform, 1},
        SweepParam{4, 1, 0, false, Sched::kFixed, 2},
        SweepParam{4, 1, 0, false, Sched::kJitter, 3},
        SweepParam{7, 2, 0, false, Sched::kUniform, 4},
        SweepParam{7, 2, 0, false, Sched::kTargeted, 5},
        SweepParam{10, 3, 0, false, Sched::kUniform, 6}));

INSTANTIATE_TEST_SUITE_P(
    Byzantine, RsmSweep,
    ::testing::Values(
        SweepParam{4, 1, 1, false, Sched::kUniform, 10},
        SweepParam{4, 1, 1, true, Sched::kUniform, 11},
        SweepParam{4, 1, 0, true, Sched::kJitter, 12},
        SweepParam{7, 2, 2, false, Sched::kUniform, 13},
        SweepParam{7, 2, 2, true, Sched::kTargeted, 14},
        SweepParam{7, 2, 1, true, Sched::kJitter, 15},
        SweepParam{10, 3, 3, true, Sched::kUniform, 16}));

class RsmSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsmSeedSweep, FakeDecidersNeverCorruptReads) {
  RsmScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.byz_replicas = 1;
  sc.num_clients = 2;
  sc.ops_per_client = 4;
  sc.seed = GetParam();
  const auto rep = harness::run_rsm(sc);
  EXPECT_TRUE(rep.completed);
  // Read Validity is the property the fake junk command would break.
  EXPECT_TRUE(rep.check.read_validity) << rep.check.diagnostic;
  EXPECT_TRUE(rep.check.ok()) << rep.check.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsmSeedSweep,
                         ::testing::Range<std::uint64_t>(500, 510));

TEST(Rsm, CounterSemantics) {
  // Reads expose a grow-only counter: the counter value over successive
  // reads of one client is non-decreasing and ends ≥ the client's own
  // completed update total.
  RsmScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.num_clients = 2;
  sc.ops_per_client = 6;  // U R U R U R
  sc.seed = 77;
  const auto rep = harness::run_rsm(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.check.ok()) << rep.check.diagnostic;

  for (const auto& hist : rep.histories) {
    std::uint64_t last = 0;
    std::uint64_t own_updates = 0;
    for (const auto& rec : hist) {
      if (rec.op.kind == Op::Kind::kRead) {
        const std::uint64_t v = rsm::counter_value(rec.read_value);
        EXPECT_GE(v, last);
        EXPECT_GE(v, own_updates);  // own completed updates visible
        last = v;
      } else {
        own_updates += rec.op.operand;
      }
    }
  }
}

TEST(Rsm, ReadLatencyExceedsUpdateLatency) {
  // A read is an update plus a confirmation round-trip.
  RsmScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.num_clients = 2;
  sc.ops_per_client = 6;
  sc.seed = 3;
  const auto rep = harness::run_rsm(sc);
  ASSERT_TRUE(rep.completed);
  EXPECT_GT(rep.mean_read_latency, rep.mean_update_latency * 0.8);
}

TEST(Rsm, LinearizableUnderBatchingWithBackpressure) {
  // Replicas run a bounded ingress queue small enough that concurrent
  // clients get queue-full nacks and must resend. Every §7.1 property and
  // the explicit linearization witness must survive the batching — a
  // nacked-then-retried command may neither vanish nor apply twice.
  RsmScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.num_clients = 3;
  sc.ops_per_client = 8;
  sc.batch.max_batch = 2;
  sc.batch.max_queue = 1;  // tiny bound: overload is the point
  sc.seed = 99;
  const auto rep = harness::run_rsm(sc);
  ASSERT_TRUE(rep.completed) << "ops did not all complete under backpressure";
  EXPECT_TRUE(rep.check.ok()) << rep.check.diagnostic;
  EXPECT_TRUE(rep.linearization.linearizable)
      << rep.linearization.diagnostic;
  // The scenario must actually have exercised the nack path.
  EXPECT_GT(rep.backpressure_retries, 0u);
}

TEST(Rsm, BatchedRunsMatchUnbatchedSemantics) {
  // Same workload with and without batching: the command sets and final
  // counter semantics agree (transcripts differ, the linearizable outcome
  // does not).
  for (const std::uint32_t max_batch : {0u, 4u}) {
    RsmScenario sc;
    sc.n = 4;
    sc.f = 1;
    sc.num_clients = 2;
    sc.ops_per_client = 6;
    sc.batch.max_batch = max_batch;
    sc.batch.max_queue = 32;
    sc.seed = 31;
    const auto rep = harness::run_rsm(sc);
    ASSERT_TRUE(rep.completed) << "max_batch=" << max_batch;
    EXPECT_TRUE(rep.check.ok()) << rep.check.diagnostic;
    EXPECT_TRUE(rep.linearization.linearizable)
        << rep.linearization.diagnostic;
    EXPECT_EQ(rep.ops_completed, 12u);
  }
}

TEST(Rsm, DeterministicReplay) {
  RsmScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.byz_replicas = 1;
  sc.seed = 21;
  const auto a = harness::run_rsm(sc);
  const auto b = harness::run_rsm(sc);
  EXPECT_EQ(a.total_msgs, b.total_msgs);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
}

// ---- checker self-tests over synthetic histories ----

OpRecord rec_update(ClientId c, std::uint64_t seq, std::uint64_t amt,
                    sim::Time invoke, sim::Time complete) {
  OpRecord r;
  r.op = Op::update(amt);
  r.cmd = Item{c, seq, amt};
  r.invoke_time = invoke;
  r.complete_time = complete;
  r.completed = true;
  return r;
}

OpRecord rec_read(ClientId c, std::uint64_t seq, sim::Time invoke,
                  sim::Time complete, lattice::Elem value) {
  OpRecord r;
  r.op = Op::read();
  r.cmd = Item{c, seq, rsm::kNopOperand};
  r.invoke_time = invoke;
  r.complete_time = complete;
  r.completed = true;
  r.read_value = std::move(value);
  return r;
}

TEST(RsmChecker, CleanHistoryPasses) {
  const Item u{1, 1, 5};
  std::vector<std::vector<OpRecord>> hist(1);
  hist[0].push_back(rec_update(1, 1, 5, 0, 10));
  hist[0].push_back(rec_read(1, 2, 20, 30, lattice::make_set({u})));
  const auto res = rsm::check_history(hist);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

TEST(RsmChecker, DetectsIncompleteOp) {
  std::vector<std::vector<OpRecord>> hist(1);
  hist[0].push_back(rec_update(1, 1, 5, 0, 10));
  hist[0].back().completed = false;
  const auto res = rsm::check_history(hist);
  EXPECT_FALSE(res.liveness);
}

TEST(RsmChecker, DetectsUnissuedCommandInRead) {
  std::vector<std::vector<OpRecord>> hist(1);
  hist[0].push_back(
      rec_read(1, 1, 0, 10, lattice::make_set({Item{9, 9, 9}})));
  const auto res = rsm::check_history(hist);
  EXPECT_FALSE(res.read_validity);
}

TEST(RsmChecker, AllowedExtraCoversByzantineClientCommands) {
  const Item byz_cmd{9, 9, 9};
  std::vector<std::vector<OpRecord>> hist(1);
  hist[0].push_back(rec_read(1, 1, 0, 10, lattice::make_set({byz_cmd})));
  const auto res = rsm::check_history(hist, {byz_cmd});
  EXPECT_TRUE(res.read_validity) << res.diagnostic;
}

TEST(RsmChecker, DetectsIncomparableReads) {
  std::vector<std::vector<OpRecord>> hist(2);
  const Item a{1, 1, 5};
  const Item b{2, 1, 7};
  hist[0].push_back(rec_update(1, 1, 5, 0, 5));
  hist[0].push_back(rec_read(1, 2, 6, 10, lattice::make_set({a})));
  hist[1].push_back(rec_update(2, 1, 7, 0, 5));
  hist[1].push_back(rec_read(2, 2, 6, 10, lattice::make_set({b})));
  const auto res = rsm::check_history(hist);
  EXPECT_FALSE(res.read_consistency);
}

TEST(RsmChecker, DetectsNonMonotonicReads) {
  const Item a{1, 1, 5};
  std::vector<std::vector<OpRecord>> hist(1);
  hist[0].push_back(rec_update(1, 1, 5, 0, 5));
  hist[0].push_back(rec_read(1, 2, 6, 10, lattice::make_set({a})));
  hist[0].push_back(rec_read(1, 3, 20, 30, lattice::make_set({})));
  const auto res = rsm::check_history(hist);
  EXPECT_FALSE(res.read_monotonicity);
}

TEST(RsmChecker, DetectsStabilityViolation) {
  const Item u1{1, 1, 5};
  const Item u2{1, 2, 7};
  std::vector<std::vector<OpRecord>> hist(1);
  hist[0].push_back(rec_update(1, 1, 5, 0, 5));    // u1 completes first
  hist[0].push_back(rec_update(1, 2, 7, 10, 15));  // then u2
  // A read that sees u2 but not u1.
  hist[0].push_back(rec_read(1, 3, 20, 30, lattice::make_set({u2})));
  const auto res = rsm::check_history(hist);
  EXPECT_FALSE(res.update_stability);
  (void)u1;
}

TEST(RsmChecker, DetectsVisibilityViolation) {
  std::vector<std::vector<OpRecord>> hist(1);
  hist[0].push_back(rec_update(1, 1, 5, 0, 5));
  hist[0].push_back(rec_read(1, 2, 10, 20, lattice::make_set({})));
  const auto res = rsm::check_history(hist);
  EXPECT_FALSE(res.update_visibility);
}

TEST(RsmChecker, ConcurrentOpsUnconstrained) {
  // Overlapping ops (no happens-before) impose no obligations.
  const Item a{1, 1, 5};
  std::vector<std::vector<OpRecord>> hist(2);
  hist[0].push_back(rec_update(1, 1, 5, 0, 100));
  hist[1].push_back(rec_read(2, 1, 10, 50, lattice::make_set({})));
  const auto res = rsm::check_history(hist);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
  (void)a;
}

TEST(RsmChecker, CounterValueIgnoresNops) {
  const Item u{1, 1, 5};
  const Item nop{2, 1, rsm::kNopOperand};
  EXPECT_EQ(rsm::counter_value(lattice::make_set({u, nop})), 5u);
  EXPECT_EQ(rsm::counter_value(lattice::Elem()), 0u);
}

TEST(Rsm, UpdatesAreDeduplicatedByCommandIdentity) {
  // A Byzantine client resending the same (client, seq) must not make the
  // replica propose it twice — the state is a set, so this is mostly a
  // performance concern; assert the replica-side dedup works.
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 1, 5);
  std::vector<std::unique_ptr<rsm::Replica>> reps;
  for (ProcessId id = 0; id < 4; ++id) {
    reps.push_back(
        std::make_unique<rsm::Replica>(net, id, cfg, 4, 1));
  }
  class Spammer : public sim::Process {
   public:
    Spammer(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
    void on_start() override {
      for (int i = 0; i < 5; ++i) {
        send(0, std::make_shared<rsm::UpdateMsg>(Item{4, 1, 9}));
      }
    }
    void on_message(ProcessId, const sim::MessagePtr&) override {}
  };
  Spammer client(net, 4);
  reps[0]->set_decide_hook(
      [&net](const la::GwtsProcess& p, const la::DecisionRecord&) {
        if (p.decisions().size() >= 2) net.request_stop();
      });
  net.run(2'000'000);
  EXPECT_EQ(reps[0]->submitted().size(), 1u);  // deduped to one submission
}

}  // namespace
}  // namespace bgla

namespace bgla {
namespace {

TEST(Linearize, ConstructsWitnessForRealRuns) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    harness::RsmScenario sc;
    sc.n = 4;
    sc.f = 1;
    sc.byz_replicas = 1;
    sc.with_byz_client = true;
    sc.num_clients = 2;
    sc.ops_per_client = 4;
    sc.seed = seed;
    const auto rep = harness::run_rsm(sc);
    ASSERT_TRUE(rep.completed);
    EXPECT_TRUE(rep.linearization.linearizable)
        << rep.linearization.diagnostic;
    // The witness covers every completed operation exactly once.
    std::size_t completed = 0;
    for (const auto& h : rep.histories) {
      for (const auto& r : h) completed += r.completed ? 1 : 0;
    }
    EXPECT_EQ(rep.linearization.order.size(), completed);
  }
}

TEST(Linearize, RejectsNonChainReads) {
  const lattice::Item a{1, 1, 5};
  const lattice::Item b{2, 1, 7};
  std::vector<std::vector<rsm::OpRecord>> hist(2);
  hist[0].push_back(rec_update(1, 1, 5, 0, 5));
  hist[0].push_back(rec_read(1, 2, 6, 10, lattice::make_set({a})));
  hist[1].push_back(rec_update(2, 1, 7, 0, 5));
  hist[1].push_back(rec_read(2, 2, 6, 10, lattice::make_set({b})));
  const auto res = rsm::linearize(hist);
  EXPECT_FALSE(res.linearizable);
  EXPECT_NE(res.diagnostic.find("chain"), std::string::npos);
}

TEST(Linearize, RejectsRealTimeViolation) {
  // u completes at t=5; a read invoked at t=10 misses it but a later read
  // sees it — the update would have to linearize both before t=10's read
  // (real time) and after it (semantics): impossible.
  const lattice::Item u{1, 1, 5};
  std::vector<std::vector<rsm::OpRecord>> hist(1);
  hist[0].push_back(rec_update(1, 1, 5, 0, 5));
  hist[0].push_back(rec_read(1, 2, 10, 20, lattice::make_set({})));
  hist[0].push_back(rec_read(1, 3, 30, 40, lattice::make_set({u})));
  const auto res = rsm::linearize(hist);
  EXPECT_FALSE(res.linearizable);
}

TEST(Linearize, RejectsUnattributedCommands) {
  std::vector<std::vector<rsm::OpRecord>> hist(1);
  hist[0].push_back(
      rec_read(1, 1, 0, 10, lattice::make_set({lattice::Item{9, 9, 9}})));
  const auto res = rsm::linearize(hist);
  EXPECT_FALSE(res.linearizable);
  const auto res2 = rsm::linearize(hist, {lattice::Item{9, 9, 9}});
  EXPECT_TRUE(res2.linearizable) << res2.diagnostic;
}

TEST(Linearize, AcceptsConcurrentMixes) {
  // Two overlapping updates and an overlapping read that sees only one:
  // fine — the read linearizes between them.
  const lattice::Item u1{1, 1, 5};
  std::vector<std::vector<rsm::OpRecord>> hist(2);
  hist[0].push_back(rec_update(1, 1, 5, 0, 100));
  hist[0].push_back(rec_update(1, 2, 6, 110, 200));
  hist[1].push_back(rec_read(2, 1, 50, 150, lattice::make_set({u1})));
  const auto res = rsm::linearize(hist);
  EXPECT_TRUE(res.linearizable) << res.diagnostic;
  // Witness order: u1, read, u2.
  ASSERT_EQ(res.order.size(), 3u);
  EXPECT_EQ(res.order[0].client, 0u);
  EXPECT_EQ(res.order[1].client, 1u);
  EXPECT_EQ(res.order[2].client, 0u);
}

TEST(Linearize, TrailingIncompleteOpIgnored) {
  const lattice::Item u{1, 1, 5};
  std::vector<std::vector<rsm::OpRecord>> hist(1);
  hist[0].push_back(rec_update(1, 1, 5, 0, 5));
  hist[0].push_back(rec_read(1, 2, 6, 10, lattice::make_set({u})));
  rsm::OpRecord pend;
  pend.op = rsm::Op::update(9);
  pend.cmd = lattice::Item{1, 3, 9};
  pend.invoke_time = 20;
  pend.completed = false;
  hist[0].push_back(pend);
  const auto res = rsm::linearize(hist);
  EXPECT_TRUE(res.linearizable) << res.diagnostic;
  EXPECT_EQ(res.order.size(), 2u);
}

}  // namespace
}  // namespace bgla
