// SbS (§8, Algorithms 8-10) tests: spec sweeps, the Theorem 8 delay bound
// (≤ 4f+5 — no reliable broadcast, so no amplification slack needed), the
// Lemma 16 refinement bound (≤ 2f), Lemma 13 (at most one safe value per
// signer), blacklist behaviour, AllSafe proof validation against forged /
// insufficient / duplicated proofs, and the message-size trade-off.
#include <gtest/gtest.h>

#include "byz/strategies.h"
#include "harness/scenario.h"
#include "la/sbs.h"
#include "lattice/chain.h"
#include "lattice/maxint_elem.h"
#include "lattice/set_elem.h"

namespace bgla {
namespace {

using harness::Adversary;
using harness::SbsScenario;
using harness::Sched;
using la::SafeValue;
using la::SafeValueSet;
using la::SignedValue;
using la::SignedValueSet;
using lattice::Item;
using lattice::make_set;

struct SweepParam {
  std::uint32_t n;
  std::uint32_t f;
  Adversary adversary;
  Sched sched;
  std::uint64_t seed;
};

class SbsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SbsSweep, SpecAndBounds) {
  const SweepParam p = GetParam();
  SbsScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_count = p.f;
  sc.adversary = p.adversary;
  sc.sched = p.sched;
  sc.seed = p.seed;
  const auto rep = harness::run_sbs(sc);

  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_LE(rep.max_depth, 4 * p.f + 5);      // Theorem 8
  EXPECT_LE(rep.max_refinements, 2 * p.f);    // Lemma 16
}

INSTANTIATE_TEST_SUITE_P(
    NoFault, SbsSweep,
    ::testing::Values(
        SweepParam{4, 1, Adversary::kNone, Sched::kUniform, 1},
        SweepParam{4, 1, Adversary::kNone, Sched::kFixed, 2},
        SweepParam{7, 2, Adversary::kNone, Sched::kUniform, 3},
        SweepParam{7, 2, Adversary::kNone, Sched::kJitter, 4},
        SweepParam{10, 3, Adversary::kNone, Sched::kUniform, 5},
        SweepParam{13, 4, Adversary::kNone, Sched::kTargeted, 6},
        SweepParam{16, 5, Adversary::kNone, Sched::kUniform, 7}));

INSTANTIATE_TEST_SUITE_P(
    Adversarial, SbsSweep,
    ::testing::Values(
        SweepParam{4, 1, Adversary::kMute, Sched::kUniform, 10},
        SweepParam{4, 1, Adversary::kEquivocator, Sched::kUniform, 11},
        SweepParam{4, 1, Adversary::kEquivocator, Sched::kJitter, 12},
        SweepParam{4, 1, Adversary::kStaleNacker, Sched::kUniform, 13},
        SweepParam{4, 1, Adversary::kFlooder, Sched::kUniform, 14},
        SweepParam{7, 2, Adversary::kEquivocator, Sched::kUniform, 15},
        SweepParam{7, 2, Adversary::kStaleNacker, Sched::kTargeted, 16},
        SweepParam{7, 2, Adversary::kMute, Sched::kJitter, 17},
        SweepParam{10, 3, Adversary::kEquivocator, Sched::kUniform, 18},
        SweepParam{10, 3, Adversary::kStaleNacker, Sched::kUniform, 19}));

class SbsSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SbsSeedSweep, DoubleSignerLemma13) {
  // At most one of the equivocator's two values can ever be decided, and
  // no two correct processes decide different values of the same signer.
  SbsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = GetParam();
  const auto rep = harness::run_sbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbsSeedSweep,
                         ::testing::Range<std::uint64_t>(300, 312));

TEST(Sbs, FakeConflictAckerGetsBlacklisted) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  // Stretch the correct acceptors' links to proposer 0 so the Byzantine
  // fake-conflict ack is guaranteed to arrive while p0 is still in the
  // safetying state (otherwise it is simply ignored — also fine, but then
  // the blacklist path would be untested).
  auto victims = std::set<std::pair<ProcessId, ProcessId>>{{1, 0}, {2, 0}};
  sim::Network net(
      std::make_unique<sim::TargetedDelay>(victims, 1, 80), 8, 4);
  const crypto::SignatureAuthority auth(4, 5);
  std::vector<std::unique_ptr<la::SbsProcess>> correct;
  for (ProcessId id = 0; id < 3; ++id) {
    correct.push_back(std::make_unique<la::SbsProcess>(
        net, id, cfg, auth, make_set({Item{id, 1 + id, 0}})));
  }
  byz::SbsFakeConflictAcker byzp(net, 3, cfg, auth);
  net.run();
  for (auto& p : correct) {
    ASSERT_TRUE(p->decided());
    EXPECT_FALSE(p->marked_byz(0));
    EXPECT_FALSE(p->marked_byz(1));
    EXPECT_FALSE(p->marked_byz(2));
  }
  // Proposer 0 processed the fabricated conflicts while safetying — the
  // invalid pairs fail VerifyConfPair and the sender is blacklisted
  // (Alg 8 L23-24).
  EXPECT_TRUE(correct[0]->marked_byz(3));
}

TEST(Sbs, DecisionsContainAtMostOneValuePerSigner) {
  for (std::uint64_t seed : {1, 5, 9, 13}) {
    SbsScenario sc;
    sc.n = 7;
    sc.f = 2;
    sc.byz_count = 2;
    sc.adversary = Adversary::kEquivocator;
    sc.seed = seed;
    const auto rep = harness::run_sbs(sc);
    EXPECT_TRUE(rep.completed);
    EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  }
}

TEST(Sbs, MessageSizeTradeoff) {
  // §8: SbS trades message count for message size. At equal (n, f) the
  // per-process byte volume of SbS must exceed WTS's while the message
  // count is lower (for large enough n).
  harness::WtsScenario wsc;
  wsc.n = 16;
  wsc.f = 1;
  wsc.byz_count = 1;
  wsc.adversary = Adversary::kMute;
  wsc.seed = 4;
  const auto wts = harness::run_wts(wsc);

  SbsScenario ssc;
  ssc.n = 16;
  ssc.f = 1;
  ssc.byz_count = 1;
  ssc.adversary = Adversary::kMute;
  ssc.seed = 4;
  const auto sbs = harness::run_sbs(ssc);

  EXPECT_TRUE(wts.spec.ok());
  EXPECT_TRUE(sbs.spec.ok());
  EXPECT_LT(sbs.max_msgs_per_correct, wts.max_msgs_per_correct)
      << "SbS should send fewer messages at f = O(1)";
}

// ---- AllSafe proof validation against fabricated evidence ----

class AllSafeTest : public ::testing::Test {
 protected:
  AllSafeTest() : auth_(8, 77) {
    cfg_.n = 7;
    cfg_.f = 2;
  }

  SignedValue sv(ProcessId signer, std::uint64_t v) {
    return la::make_signed_value(auth_.signer_for(signer),
                                 make_set({Item{signer, v, 0}}));
  }

  /// A clean safe_ack from `acceptor` echoing `set` with no conflicts.
  la::SafeAckPtr ack(ProcessId acceptor, const SignedValueSet& set) {
    const auto sig = auth_.signer_for(acceptor).sign(
        la::SSafeAckMsg::signed_payload(set, {}, acceptor));
    return std::make_shared<la::SSafeAckMsg>(
        set, std::vector<la::ConflictPair>{}, acceptor, sig);
  }

  la::LaConfig cfg_;
  crypto::SignatureAuthority auth_;
};

TEST_F(AllSafeTest, AcceptsGenuineProof) {
  SignedValueSet set;
  const SignedValue v = sv(0, 5);
  set.insert(v);
  SafeValueSet proposal;
  std::vector<la::SafeAckPtr> proof;
  for (ProcessId a = 0; a < cfg_.quorum(); ++a) proof.push_back(ack(a, set));
  proposal.insert(SafeValue{v, proof});
  EXPECT_TRUE(la::SbsProcess::all_safe(proposal, cfg_, auth_));
}

TEST_F(AllSafeTest, RejectsSubQuorumProof) {
  SignedValueSet set;
  const SignedValue v = sv(0, 5);
  set.insert(v);
  SafeValueSet proposal;
  std::vector<la::SafeAckPtr> proof;
  for (ProcessId a = 0; a + 1 < cfg_.quorum(); ++a) {
    proof.push_back(ack(a, set));
  }
  proposal.insert(SafeValue{v, proof});
  EXPECT_FALSE(la::SbsProcess::all_safe(proposal, cfg_, auth_));
}

TEST_F(AllSafeTest, RejectsDuplicateAcceptors) {
  SignedValueSet set;
  const SignedValue v = sv(0, 5);
  set.insert(v);
  SafeValueSet proposal;
  std::vector<la::SafeAckPtr> proof;
  const auto same = ack(1, set);
  for (std::uint32_t k = 0; k < cfg_.quorum(); ++k) proof.push_back(same);
  proposal.insert(SafeValue{v, proof});
  EXPECT_FALSE(la::SbsProcess::all_safe(proposal, cfg_, auth_));
}

TEST_F(AllSafeTest, RejectsAcksNotContainingValue) {
  SignedValueSet with_v, without_v;
  const SignedValue v = sv(0, 5);
  with_v.insert(v);
  without_v.insert(sv(1, 6));
  SafeValueSet proposal;
  std::vector<la::SafeAckPtr> proof;
  for (ProcessId a = 0; a < cfg_.quorum(); ++a) {
    proof.push_back(ack(a, without_v));  // echoes a set lacking v
  }
  proposal.insert(SafeValue{v, proof});
  EXPECT_FALSE(la::SbsProcess::all_safe(proposal, cfg_, auth_));
}

TEST_F(AllSafeTest, RejectsConflictedValue) {
  SignedValueSet set;
  const SignedValue v = sv(0, 5);
  const SignedValue v2 = sv(0, 6);  // same signer, different value
  set.insert(v);
  SafeValueSet proposal;
  std::vector<la::SafeAckPtr> proof;
  for (ProcessId a = 0; a < cfg_.quorum(); ++a) {
    if (a == 0) {
      std::vector<la::ConflictPair> conflicts{{v, v2}};
      const auto sig = auth_.signer_for(a).sign(
          la::SSafeAckMsg::signed_payload(set, conflicts, a));
      proof.push_back(std::make_shared<la::SSafeAckMsg>(
          set, conflicts, a, sig));
    } else {
      proof.push_back(ack(a, set));
    }
  }
  proposal.insert(SafeValue{v, proof});
  EXPECT_FALSE(la::SbsProcess::all_safe(proposal, cfg_, auth_));
}

TEST_F(AllSafeTest, RejectsForgedAckSignature) {
  SignedValueSet set;
  const SignedValue v = sv(0, 5);
  set.insert(v);
  SafeValueSet proposal;
  std::vector<la::SafeAckPtr> proof;
  for (ProcessId a = 0; a < cfg_.quorum(); ++a) {
    if (a == 2) {
      // Signature produced by process 6 but the ack claims acceptor 2.
      const auto sig = auth_.signer_for(6).sign(
          la::SSafeAckMsg::signed_payload(set, {}, a));
      proof.push_back(std::make_shared<la::SSafeAckMsg>(
          set, std::vector<la::ConflictPair>{}, a, sig));
    } else {
      proof.push_back(ack(a, set));
    }
  }
  proposal.insert(SafeValue{v, proof});
  EXPECT_FALSE(la::SbsProcess::all_safe(proposal, cfg_, auth_));
}

TEST_F(AllSafeTest, RejectsInadmissibleValueDespiteProof) {
  cfg_.is_admissible = [](const lattice::Elem& e) {
    return lattice::all_items(e,
                              [](const Item& it) { return it.b < 3; });
  };
  SignedValueSet set;
  const SignedValue v = sv(0, 5);  // b = 5 ≥ 3: not in E
  set.insert(v);
  SafeValueSet proposal;
  std::vector<la::SafeAckPtr> proof;
  for (ProcessId a = 0; a < cfg_.quorum(); ++a) proof.push_back(ack(a, set));
  proposal.insert(SafeValue{v, proof});
  EXPECT_FALSE(la::SbsProcess::all_safe(proposal, cfg_, auth_));
}

TEST(SbsValueSets, ConflictDetectionAndRemoval) {
  crypto::SignatureAuthority auth(4, 3);
  SignedValueSet set;
  const auto a1 = la::make_signed_value(auth.signer_for(0),
                                        make_set({Item{0, 1, 0}}));
  const auto a2 = la::make_signed_value(auth.signer_for(0),
                                        make_set({Item{0, 2, 0}}));
  const auto b = la::make_signed_value(auth.signer_for(1),
                                       make_set({Item{1, 1, 0}}));
  set.insert(a1);
  set.insert(a2);
  set.insert(b);
  EXPECT_EQ(set.conflicts(auth).size(), 1u);
  set.remove_conflicts(auth);
  EXPECT_EQ(set.size(), 1u);  // only b survives
  EXPECT_TRUE(set.contains(b.key()));
}

TEST(SbsValueSets, FingerprintIgnoresProofIdentity) {
  crypto::SignatureAuthority auth(4, 3);
  const auto v = la::make_signed_value(auth.signer_for(0),
                                       make_set({Item{0, 1, 0}}));
  SafeValueSet s1, s2;
  s1.insert(SafeValue{v, {}});
  s2.insert(SafeValue{v, {}});
  EXPECT_TRUE(s1.same_as(s2));
  EXPECT_TRUE(s1.leq(s2));
}

}  // namespace
}  // namespace bgla

namespace bgla {
namespace {

TEST(Sbs, RunsOnMaxIntLattice) {
  // Lattice generality of the signature-based algorithm: identical code
  // on the totally ordered max-int family.
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.expected_kind = "maxint";
  const crypto::SignatureAuthority auth(4, 17);
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), 17, 4);
  std::vector<std::unique_ptr<la::SbsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::SbsProcess>(
        net, id, cfg, auth, lattice::make_maxint(10 * (id + 1))));
  }
  const auto rr = net.run();
  EXPECT_TRUE(rr.quiescent);
  std::vector<lattice::Elem> decisions;
  for (const auto& p : procs) {
    ASSERT_TRUE(p->decided());
    decisions.push_back(p->decision().value);
    EXPECT_GE(lattice::maxint_value(p->decision().value),
              10 * (p->id() + 1));
    EXPECT_LE(lattice::maxint_value(p->decision().value), 40u);
  }
  EXPECT_TRUE(lattice::is_chain(decisions));
}

}  // namespace
}  // namespace bgla
