// Handler-level tests for the signature-based algorithms: a driver with
// its own signing identity injects hand-crafted hostile messages into
// real SbS / GSbS processes.
#include <gtest/gtest.h>

#include "la/gsbs.h"
#include "la/sbs.h"
#include "lattice/set_elem.h"
#include "sim/network.h"

namespace bgla {
namespace {

using la::Elem;
using lattice::Item;
using lattice::make_set;

Elem val(std::uint64_t x) { return make_set({Item{x, 0, 0}}); }

class Driver : public sim::Process {
 public:
  Driver(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    received.emplace_back(from, msg);
  }
  std::vector<std::pair<ProcessId, sim::MessagePtr>> received;
};

class SbsUnit : public ::testing::Test {
 protected:
  SbsUnit() : auth_(4, 55) {
    cfg_.n = 4;
    cfg_.f = 1;
    net_ = std::make_unique<sim::Network>(
        std::make_unique<sim::FixedDelay>(1), 1, 4);
    for (ProcessId id = 0; id < 3; ++id) {
      procs_.push_back(std::make_unique<la::SbsProcess>(
          *net_, id, cfg_, auth_, val(100 + id)));
    }
    driver_ = std::make_unique<Driver>(*net_, 3);
  }

  la::LaConfig cfg_;
  crypto::SignatureAuthority auth_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<la::SbsProcess>> procs_;
  std::unique_ptr<Driver> driver_;
};

TEST_F(SbsUnit, UnsignedInitIsRejected) {
  // An init whose signature is under the wrong identity never enters any
  // safety set (and hence no decision).
  la::SignedValue forged;
  forged.value = val(666);
  forged.sig = auth_.signer_for(3).sign(val(667).encoded());  // mismatch
  for (ProcessId to = 0; to < 3; ++to) {
    net_->inject(3, to, std::make_shared<la::SInitMsg>(forged), 1);
  }
  net_->run();
  for (const auto& p : procs_) {
    ASSERT_TRUE(p->decided());
    EXPECT_FALSE(val(666).leq(p->decision().value));
  }
}

TEST_F(SbsUnit, ProperlySignedByzValueIsAccepted) {
  // Control: a correctly signed, admissible init from the driver counts
  // as a fourth proposal and can be decided (the spec allows Byzantine
  // values — that is this paper's difference from [7]).
  const auto sv = la::make_signed_value(auth_.signer_for(3), val(66));
  for (ProcessId to = 0; to < 3; ++to) {
    net_->inject(3, to, std::make_shared<la::SInitMsg>(sv), 1);
  }
  net_->run();
  bool somewhere = false;
  for (const auto& p : procs_) {
    ASSERT_TRUE(p->decided());
    somewhere = somewhere || val(66).leq(p->decision().value);
  }
  EXPECT_TRUE(somewhere);
}

TEST_F(SbsUnit, ProposalWithoutProofsIsIgnoredByAcceptors) {
  // An ack request whose values carry no proofs of safety must draw no
  // ack and no nack.
  la::SafeValueSet bare;
  bare.insert(la::SafeValue{
      la::make_signed_value(auth_.signer_for(3), val(67)), {}});
  net_->inject(3, 0, std::make_shared<la::SAckReqMsg>(bare, 1), 1);
  net_->run();
  for (const auto& [from, msg] : driver_->received) {
    EXPECT_EQ(dynamic_cast<const la::SAckMsg*>(msg.get()), nullptr);
    EXPECT_EQ(dynamic_cast<const la::SNackMsg*>(msg.get()), nullptr);
  }
}

TEST_F(SbsUnit, TamperedTsInAckIsHarmless) {
  for (int i = 0; i < 8; ++i) {
    net_->inject(3, 0,
                 std::make_shared<la::SAckMsg>(la::SafeValueSet{}, 42), 1);
  }
  net_->run();
  for (const auto& p : procs_) {
    ASSERT_TRUE(p->decided());
    // All three correct proposals still in the decision (the protocol
    // went the full distance; fake acks neither decided early nor
    // blacklisted anyone incorrectly... process 3 may be blacklisted).
    for (ProcessId id = 0; id < 3; ++id) {
      EXPECT_TRUE(val(100 + id).leq(p->decision().value));
    }
    EXPECT_FALSE(p->marked_byz(0));
    EXPECT_FALSE(p->marked_byz(1));
    EXPECT_FALSE(p->marked_byz(2));
  }
}

class GsbsUnit : public ::testing::Test {
 protected:
  GsbsUnit() : auth_(4, 77) {
    cfg_.n = 4;
    cfg_.f = 1;
    net_ = std::make_unique<sim::Network>(
        std::make_unique<sim::FixedDelay>(1), 1, 4);
    for (ProcessId id = 0; id < 3; ++id) {
      procs_.push_back(
          std::make_unique<la::GsbsProcess>(*net_, id, cfg_, auth_));
    }
    driver_ = std::make_unique<Driver>(*net_, 3);
    for (auto& p : procs_) {
      p->set_decide_hook(
          [this](const la::GsbsProcess&, const la::DecisionRecord&) {
            for (auto& q : procs_) {
              if (q->decisions().size() < 3) return;
            }
            net_->request_stop();
          });
    }
  }

  la::LaConfig cfg_;
  crypto::SignatureAuthority auth_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<la::GsbsProcess>> procs_;
  std::unique_ptr<Driver> driver_;
};

TEST_F(GsbsUnit, MalformedCertCannotAdvanceTrust) {
  // A DECIDED certificate with zero acks (or forged ones) must not move
  // trusted_round.
  const auto cert = std::make_shared<la::GSDecidedMsg>(
      la::SafeBatchSet{}, /*decider=*/3, /*ts=*/1, /*round=*/7,
      std::vector<std::shared_ptr<const la::GSAckMsg>>{});
  for (ProcessId to = 0; to < 3; ++to) net_->inject(3, to, cert, 1);
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  for (const auto& p : procs_) {
    EXPECT_LT(p->trusted_round(), 7u);
  }
}

TEST_F(GsbsUnit, ReplayedBatchFromOtherRoundRejected) {
  // Sign a batch for round 0 and replay it as round 1: the round is in
  // the signed payload, so handle_init drops it and it never decides.
  auto batch = la::make_signed_batch(auth_.signer_for(3), val(68), 0);
  batch.round = 1;  // replay attempt
  for (ProcessId to = 0; to < 3; ++to) {
    net_->inject(3, to, std::make_shared<la::GSInitMsg>(batch), 1);
  }
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  for (const auto& p : procs_) {
    for (const auto& d : p->decisions()) {
      EXPECT_FALSE(val(68).leq(d.value));
    }
  }
}

TEST_F(GsbsUnit, HonestSignedBatchIsIncluded) {
  const auto batch = la::make_signed_batch(auth_.signer_for(3), val(69), 0);
  for (ProcessId to = 0; to < 3; ++to) {
    net_->inject(3, to, std::make_shared<la::GSInitMsg>(batch), 1);
  }
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  for (const auto& p : procs_) {
    EXPECT_TRUE(val(69).leq(p->decisions().back().value));
  }
}

TEST_F(GsbsUnit, FutureRoundRequestBuffered) {
  la::SafeBatchSet bare;
  net_->inject(3, 0, std::make_shared<la::GSAckReqMsg>(bare, 1, 40), 1);
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  // No answer for round 40 ever reached the driver.
  for (const auto& [from, msg] : driver_->received) {
    if (const auto* ack = dynamic_cast<const la::GSAckMsg*>(msg.get())) {
      EXPECT_NE(ack->round, 40u);
    }
    if (const auto* nack = dynamic_cast<const la::GSNackMsg*>(msg.get())) {
      EXPECT_NE(nack->round, 40u);
    }
  }
}

}  // namespace
}  // namespace bgla
