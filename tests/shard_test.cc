// The sharded multi-lattice subsystem: FNV-1a routing hash (fixed
// vectors), ShardMap partitioning, FrontierMerger monotone merging, the
// Router end to end in-sim (S replica stacks behind each node identity,
// shard-oblivious clients), unknown-shard-id rejection, and the sharded
// throughput harness's split/merge/spec guarantees.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/sharded.h"
#include "la/config.h"
#include "la/messages.h"
#include "lattice/set_elem.h"
#include "net/shard_envelope.h"
#include "rsm/client.h"
#include "rsm/replica.h"
#include "shard/frontier.h"
#include "shard/router.h"
#include "shard/shard_map.h"
#include "sim/network.h"
#include "util/hash.h"

namespace bgla {
namespace {

using lattice::Elem;
using lattice::Item;
using lattice::make_set;
using lattice::set_items;

// ------------------------------------------------------------ FNV-1a ----

std::uint64_t h(const std::string& s) {
  return util::fnv1a64(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size());
}

// The published 64-bit FNV-1a vectors (Fowler/Noll/Vo reference). If these
// move, every golden transcript of a sharded run is invalid.
TEST(Fnv1a, MatchesPublishedVectors) {
  EXPECT_EQ(h(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(h("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(h("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(h("hello"), 0xa430d84680aabd0bull);
}

TEST(Fnv1a, U64VariantHashesLittleEndianBytes) {
  // fnv1a64_u64 must agree with hashing the 8 LE bytes — that equivalence
  // is what pins shard routing across platforms.
  EXPECT_EQ(util::fnv1a64_u64(0), 0xa8c7f832281a39c5ull);
  EXPECT_EQ(util::fnv1a64_u64(0xdeadbeefull), 0x7513fc78a110e05bull);
  const std::uint8_t le[8] = {0xef, 0xbe, 0xad, 0xde, 0, 0, 0, 0};
  EXPECT_EQ(util::fnv1a64(le, 8), util::fnv1a64_u64(0xdeadbeefull));
}

TEST(Fnv1a, SeedChainingComposes) {
  // Hashing "ab" equals hashing "b" seeded with the state after "a" —
  // the property ShardMap relies on to hash multi-field keys field by
  // field without materializing a buffer.
  EXPECT_EQ(h("ab"),
            util::fnv1a64(reinterpret_cast<const std::uint8_t*>("b"), 1,
                          h("a")));
  static_assert(util::fnv1a64_u64(1) != util::fnv1a64_u64(2),
                "constexpr evaluation must work for compile-time tables");
}

// ----------------------------------------------------------- ShardMap ----

TEST(ShardMap, RoutesDeterministicallyInRange) {
  const shard::ShardMap map(4);
  const shard::ShardMap map2(4);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 100; b < 140; ++b) {
      const Item it{a, b, 1};
      const std::uint32_t s = map.shard_of(it);
      EXPECT_LT(s, 4u);
      EXPECT_EQ(s, map2.shard_of(it));  // a pure function of the item
    }
  }
  // Single shard: everything routes to 0.
  const shard::ShardMap one(1);
  EXPECT_EQ(one.shard_of(Item{7, 7, 7}), 0u);
}

TEST(ShardMap, ShardsAreAllPopulatedUnderUniformKeys) {
  // Not a distribution-quality proof, just a tripwire: 256 consecutive
  // command keys must hit every one of 4 shards.
  const shard::ShardMap map(4);
  std::vector<std::uint32_t> hits(4, 0);
  for (std::uint64_t k = 0; k < 256; ++k) {
    ++hits[map.shard_of(Item{k % 8, 100 + k, 1})];
  }
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_GT(hits[s], 0u) << s;
}

TEST(ShardMap, SplitPartitionsWithoutLoss) {
  const shard::ShardMap map(3);
  std::set<Item> items;
  for (std::uint64_t k = 0; k < 40; ++k) items.insert(Item{k, 100 + k, 1});
  const Elem whole = make_set(items);
  const std::vector<Elem> parts = map.split(whole);
  ASSERT_EQ(parts.size(), 3u);
  Elem rejoined;
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    for (const Item& it : set_items(parts[s])) {
      EXPECT_EQ(map.shard_of(it), s);  // each part is pure
    }
    total += parts[s].weight();
    rejoined = rejoined.join(parts[s]);
  }
  EXPECT_EQ(total, items.size());  // parts are disjoint
  EXPECT_EQ(rejoined, whole);      // and lose nothing
}

TEST(ShardMap, SplitOfBottomIsAllBottom) {
  const shard::ShardMap map(2);
  for (const Elem& part : map.split(Elem())) {
    EXPECT_TRUE(part.is_bottom());
  }
}

// ----------------------------------------------------- FrontierMerger ----

TEST(FrontierMerger, MergedFrontierOnlyGrows) {
  shard::FrontierMerger m(2);
  const Elem a = make_set({Item{1, 101, 1}});
  const Elem b = make_set({Item{2, 102, 1}});
  const Elem ab = a.join(b);

  EXPECT_TRUE(m.update(0, a));
  EXPECT_EQ(m.merged(), a);
  EXPECT_FALSE(m.update(0, a));  // duplicate: no growth
  EXPECT_TRUE(m.update(1, b));
  EXPECT_EQ(m.merged(), ab);
  // A stale (smaller) shard frontier must not shrink anything.
  EXPECT_FALSE(m.update(1, Elem()));
  EXPECT_EQ(m.merged(), ab);
  EXPECT_EQ(m.updates(), 4u);
  EXPECT_EQ(m.advances(), 2u);

  EXPECT_TRUE(m.covers(a));
  EXPECT_TRUE(m.covers(ab));
  EXPECT_FALSE(m.covers(make_set({Item{3, 103, 1}})));
  EXPECT_EQ(m.shard_frontier(0), a);
  EXPECT_EQ(m.shard_frontier(1), b);
}

// ------------------------------------------------------------- Router ----

/// Assembles a sharded RSM cluster in-sim: n node identities, each one a
/// Router fronting S replica stacks, plus shard-oblivious rsm::Clients.
struct ShardedCluster {
  static constexpr std::uint32_t kN = 4, kF = 1, kClients = 2;

  explicit ShardedCluster(std::uint32_t shards, std::uint64_t seed = 7)
      : net(std::make_unique<sim::UniformDelay>(1, 10), seed,
            kN + kClients) {
    la::LaConfig cfg;
    cfg.n = kN;
    cfg.f = kF;
    cfg.validate();
    for (ProcessId id = 0; id < kN; ++id) {
      shard::Router::Config rc;
      rc.num_shards = shards;
      rc.num_replicas = kN;
      routers.push_back(std::make_unique<shard::Router>(net, id, rc));
      for (std::uint32_t s = 0; s < shards; ++s) {
        replicas.push_back(std::make_unique<rsm::Replica>(
            routers.back()->shard_transport(s), id, cfg, kN, kClients));
      }
    }
  }

  void add_clients(std::uint32_t ops_per_client) {
    for (std::uint32_t c = 0; c < kClients; ++c) {
      std::vector<rsm::Op> script;
      for (std::uint32_t k = 0; k < ops_per_client; ++k) {
        if (k % 2 == 0) {
          script.push_back(rsm::Op::update(10 * (c + 1) + k));
        } else {
          script.push_back(rsm::Op::read());
        }
      }
      clients.push_back(std::make_unique<rsm::Client>(
          net, kN + c, kN, kF, std::move(script)));
      clients.back()->set_contact_all(true);
      clients.back()->set_op_hook(
          [this](const rsm::Client&, const rsm::OpRecord&) {
            for (const auto& cl : clients) {
              if (!cl->done()) return;
            }
            net.request_stop();
          });
    }
  }

  sim::Network net;
  std::vector<std::unique_ptr<shard::Router>> routers;
  std::vector<std::unique_ptr<rsm::Replica>> replicas;
  std::vector<std::unique_ptr<rsm::Client>> clients;
};

TEST(ShardRouter, ShardedRsmClusterCompletesClientOps) {
  ShardedCluster cluster(/*shards=*/4);
  cluster.add_clients(/*ops_per_client=*/6);
  const auto rr = cluster.net.run(40'000'000);
  EXPECT_TRUE(rr.stopped) << "sharded cluster did not finish client ops";

  Elem all_updates;
  for (const auto& c : cluster.clients) {
    ASSERT_TRUE(c->done());
    for (const auto& rec : c->history()) {
      EXPECT_TRUE(rec.completed);
      if (rec.op.kind == rsm::Op::Kind::kUpdate) {
        all_updates = all_updates.join(make_set({rec.cmd}));
      } else {
        // A confirmed read is a decided product-lattice value: it must
        // contain the reader's own preceding updates (session order).
        EXPECT_FALSE(rec.read_value.is_bottom());
      }
    }
  }

  for (const auto& r : cluster.routers) {
    // No frame was refused: the whole run spoke the sharded dialect.
    EXPECT_EQ(r->rejected_unknown_shard(), 0u);
    EXPECT_EQ(r->dropped_unroutable(), 0u);
    EXPECT_EQ(r->reads_pending(), 0u);
    // Every per-shard frontier holds only commands hashed to that shard.
    for (std::uint32_t s = 0; s < 4; ++s) {
      for (const Item& it : set_items(r->frontier().shard_frontier(s))) {
        EXPECT_EQ(r->map().shard_of(it), s);
      }
    }
  }
  // All routers converge on a merged frontier covering every update.
  for (const auto& r : cluster.routers) {
    EXPECT_TRUE(all_updates.leq(r->frontier().merged()));
  }
}

TEST(ShardRouter, ReadsAreMonotonePerClient) {
  ShardedCluster cluster(/*shards=*/2, /*seed=*/11);
  cluster.add_clients(/*ops_per_client=*/8);
  const auto rr = cluster.net.run(40'000'000);
  ASSERT_TRUE(rr.stopped);
  for (const auto& c : cluster.clients) {
    Elem prev;
    for (const auto& rec : c->history()) {
      if (rec.op.kind != rsm::Op::Kind::kRead) continue;
      EXPECT_TRUE(prev.leq(rec.read_value))
          << "read went backwards at client " << c->history().size();
      prev = rec.read_value;
    }
  }
}

/// Hostile peer for the rejection paths: sprays envelopes with
/// out-of-range shard ids and bare (shard-less) protocol frames.
class BadShardPeer : public sim::Process {
 public:
  BadShardPeer(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
  void on_start() override {
    const Elem v = make_set({Item{9, 900, 1}});
    // Unknown shard ids: must be counted and dropped, not crash.
    for (std::uint32_t s = 2; s < 7; ++s) {
      send(0, std::make_shared<net::ShardEnvelopeMsg>(
                  s, std::make_shared<la::SubmitMsg>(v)));
    }
    // A bare agreement frame has no shard to belong to: unroutable.
    send(0, std::make_shared<la::GAckReqMsg>(v, 1, 0));
  }
  void on_message(ProcessId, const sim::MessagePtr&) override {}
};

TEST(ShardRouter, RejectsUnknownShardIdsAndUnroutableFrames) {
  obs::Registry registry;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 4), 3, 2);
  shard::Router::Config rc;
  rc.num_shards = 2;
  rc.num_replicas = 2;
  rc.registry = &registry;
  shard::Router router(net, 0, rc);
  BadShardPeer peer(net, 1);
  net.run(100'000);

  EXPECT_EQ(router.rejected_unknown_shard(), 5u);
  EXPECT_EQ(router.dropped_unroutable(), 1u);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(
      snap.counters.at("bgla_shard_router_unknown_shard_rejected_total"),
      5u);
  EXPECT_EQ(
      snap.counters.at("bgla_shard_router_unroutable_dropped_total"), 1u);
}

// ----------------------------------------------------- sharded harness ----

TEST(ShardedHarness, SplitsMergesAndPassesSpecsAtFourShards) {
  harness::ShardedScenario sc;
  sc.base.protocol = harness::ThroughputProtocol::kGwts;
  sc.base.n = 4;
  sc.base.f = 1;
  sc.base.commands_per_proc = 12;
  sc.base.window = 4;
  sc.base.seed = 5;
  sc.shards = 4;
  const auto rep = harness::run_sharded_throughput(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.all_spec_ok);
  EXPECT_TRUE(rep.merge_complete);
  EXPECT_TRUE(rep.merge_monotone);
  EXPECT_EQ(rep.commands, 4u * 12u);
  EXPECT_EQ(rep.merged_weight, 4u * 12u);
  ASSERT_EQ(rep.per_shard.size(), 4u);
}

TEST(ShardedHarness, SingleShardIsTheUnshardedRun) {
  // S = 1 must take the untouched generated-feed path: the same scenario
  // through run_throughput directly yields the identical simulation.
  harness::ShardedScenario sc;
  sc.base.protocol = harness::ThroughputProtocol::kGwts;
  sc.base.n = 4;
  sc.base.f = 1;
  sc.base.commands_per_proc = 10;
  sc.base.window = 4;
  sc.base.seed = 9;
  sc.shards = 1;
  const auto sharded = harness::run_sharded_throughput(sc);
  const auto plain = harness::run_throughput(sc.base);
  ASSERT_EQ(sharded.per_shard.size(), 1u);
  EXPECT_EQ(sharded.per_shard[0].commands, plain.commands);
  EXPECT_EQ(sharded.per_shard[0].end_time, plain.end_time);
  EXPECT_EQ(sharded.per_shard[0].total_msgs, plain.total_msgs);
  EXPECT_EQ(sharded.per_shard[0].decided_frontier, plain.decided_frontier);
  EXPECT_TRUE(sharded.merge_complete);
}

}  // namespace
}  // namespace bgla
