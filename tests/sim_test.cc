// Simulator tests: deterministic event ordering, causal depth accounting,
// reliability (no loss), self-delivery semantics, metrics, delay models,
// injection and stop control.
#include <gtest/gtest.h>

#include "sim/network.h"

namespace bgla::sim {
namespace {

class PingMsg final : public Message {
 public:
  explicit PingMsg(std::uint32_t hops_left) : hops_left(hops_left) {}
  std::uint32_t type_id() const override { return 900; }
  Layer layer() const override { return Layer::kOther; }
  void encode_payload(Encoder& enc) const override {
    enc.put_u32(hops_left);
  }
  std::string to_string() const override { return "PING"; }
  std::uint32_t hops_left;
};

/// Forwards a ping to the next process in the ring until hops run out;
/// records the depth observed at each delivery.
class RingProcess : public Process {
 public:
  RingProcess(Network& net, ProcessId id, std::uint32_t n, bool initiator)
      : Process(net, id), n_(n), initiator_(initiator) {}

  void on_start() override {
    if (initiator_) {
      send((id() + 1) % n_, std::make_shared<PingMsg>(5));
    }
  }

  void on_message(ProcessId, const MessagePtr& msg) override {
    const auto* ping = dynamic_cast<const PingMsg*>(msg.get());
    ASSERT_NE(ping, nullptr);
    depths.push_back(net().current_depth());
    if (ping->hops_left > 0) {
      send((id() + 1) % n_, std::make_shared<PingMsg>(ping->hops_left - 1));
    }
  }

  std::vector<std::uint64_t> depths;

 private:
  std::uint32_t n_;
  bool initiator_;
};

TEST(Sim, DepthCountsCausalChain) {
  Network net(std::make_unique<FixedDelay>(3), 1, 3);
  RingProcess p0(net, 0, 3, true), p1(net, 1, 3, false),
      p2(net, 2, 3, false);
  const RunResult rr = net.run();
  EXPECT_TRUE(rr.quiescent);
  // Hop k arrives with depth k (1-based).
  std::vector<std::uint64_t> all;
  for (auto* p : {&p0, &p1, &p2}) {
    all.insert(all.end(), p->depths.begin(), p->depths.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
  // Time advanced 3 ticks per hop.
  EXPECT_EQ(rr.end_time, 6u * 3u);
}

class SelfEcho : public Process {
 public:
  SelfEcho(Network& net, ProcessId id) : Process(net, id) {}
  void on_start() override { send(id(), std::make_shared<PingMsg>(0)); }
  void on_message(ProcessId from, const MessagePtr&) override {
    EXPECT_EQ(from, id());
    depth_seen = net().current_depth();
    time_seen = net().now();
    ++deliveries;
  }
  std::uint64_t depth_seen = 99, time_seen = 99;
  int deliveries = 0;
};

TEST(Sim, SelfDeliveryIsDepthNeutralInstantAndUnmetered) {
  Network net(std::make_unique<FixedDelay>(10), 1, 1);
  SelfEcho p(net, 0);
  net.run();
  EXPECT_EQ(p.deliveries, 1);
  EXPECT_EQ(p.depth_seen, 0u);  // no network hop
  EXPECT_EQ(p.time_seen, 0u);
  EXPECT_EQ(net.metrics().total_messages(), 0u);  // not metered
}

TEST(Sim, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Network net(std::make_unique<UniformDelay>(1, 50), seed, 3);
    RingProcess p0(net, 0, 3, true), p1(net, 1, 3, false),
        p2(net, 2, 3, false);
    const RunResult rr = net.run();
    return std::make_tuple(rr.end_time, rr.events, p1.depths);
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(std::get<0>(run_once(7)), std::get<0>(run_once(8)));
}

TEST(Sim, ReliableDelivery) {
  // Every sent message is delivered exactly once (no loss, no dup).
  Network net(std::make_unique<UniformDelay>(1, 9), 3, 2);

  class Sender : public Process {
   public:
    Sender(Network& net, ProcessId id) : Process(net, id) {}
    void on_start() override {
      for (int i = 0; i < 100; ++i) {
        send(1, std::make_shared<PingMsg>(0));
      }
    }
    void on_message(ProcessId, const MessagePtr&) override {}
  };
  class Counter : public Process {
   public:
    Counter(Network& net, ProcessId id) : Process(net, id) {}
    void on_message(ProcessId, const MessagePtr&) override { ++count; }
    int count = 0;
  };

  Sender s(net, 0);
  Counter c(net, 1);
  net.run();
  EXPECT_EQ(c.count, 100);
  EXPECT_EQ(net.metrics().total_messages(), 100u);
  EXPECT_EQ(net.metrics().messages_sent(0), 100u);
  EXPECT_EQ(net.metrics().messages_sent(0, Layer::kOther), 100u);
  EXPECT_EQ(net.metrics().messages_sent(0, Layer::kAgreement), 0u);
  EXPECT_GT(net.metrics().bytes_sent(0), 0u);
}

TEST(Sim, InjectDeliversAtRequestedTime) {
  Network net(std::make_unique<FixedDelay>(1), 1, 1);
  class Recorder : public Process {
   public:
    Recorder(Network& net, ProcessId id) : Process(net, id) {}
    void on_message(ProcessId from, const MessagePtr&) override {
      times.push_back(net().now());
      froms.push_back(from);
    }
    std::vector<Time> times;
    std::vector<ProcessId> froms;
  };
  Recorder r(net, 0);
  net.inject(42, 0, std::make_shared<PingMsg>(0), 100);
  net.inject(43, 0, std::make_shared<PingMsg>(0), 50);
  net.run();
  ASSERT_EQ(r.times.size(), 2u);
  EXPECT_EQ(r.times[0], 50u);   // time order, not insertion order
  EXPECT_EQ(r.froms[0], 43u);
  EXPECT_EQ(r.times[1], 100u);
}

TEST(Sim, RequestStopHaltsRun) {
  Network net(std::make_unique<FixedDelay>(1), 1, 2);
  class Chatter : public Process {
   public:
    Chatter(Network& net, ProcessId id) : Process(net, id) {}
    void on_start() override { send(1 - id(), std::make_shared<PingMsg>(0)); }
    void on_message(ProcessId from, const MessagePtr&) override {
      ++seen;
      if (seen == 10 && id() == 0) net().request_stop();
      send(from, std::make_shared<PingMsg>(0));  // infinite ping-pong
    }
    int seen = 0;
  };
  Chatter a(net, 0), b(net, 1);
  const RunResult rr = net.run();
  EXPECT_TRUE(rr.stopped);
  EXPECT_FALSE(rr.quiescent);
  EXPECT_EQ(a.seen, 10);
}

TEST(Sim, MaxEventsBoundsRunawayRuns) {
  Network net(std::make_unique<FixedDelay>(1), 1, 2);
  class Chatter : public Process {
   public:
    Chatter(Network& net, ProcessId id) : Process(net, id) {}
    void on_start() override { send(1 - id(), std::make_shared<PingMsg>(0)); }
    void on_message(ProcessId from, const MessagePtr&) override {
      send(from, std::make_shared<PingMsg>(0));
    }
  };
  Chatter a(net, 0), b(net, 1);
  const RunResult rr = net.run(/*max_events=*/500);
  EXPECT_FALSE(rr.quiescent);
  EXPECT_EQ(rr.events, 500u);
}

TEST(Sim, ObserverSeesEveryDelivery) {
  Network net(std::make_unique<FixedDelay>(2), 1, 2);
  int observed = 0;
  net.set_observer([&](Time, ProcessId, ProcessId, std::uint64_t,
                       const MessagePtr&) { ++observed; });
  class OneShot : public Process {
   public:
    OneShot(Network& net, ProcessId id) : Process(net, id) {}
    void on_start() override {
      if (id() == 0) send(1, std::make_shared<PingMsg>(0));
    }
    void on_message(ProcessId, const MessagePtr&) override {}
  };
  OneShot a(net, 0), b(net, 1);
  net.run();
  EXPECT_EQ(observed, 1);
}

TEST(Delay, TargetedStretchesVictimPairsOnly) {
  TargetedDelay d({{0, 1}}, 1, 100);
  Rng rng(1);
  EXPECT_EQ(d.delay(0, 1, 0, rng), 100u);
  EXPECT_EQ(d.delay(1, 0, 0, rng), 1u);  // direction matters
  EXPECT_EQ(d.delay(0, 2, 0, rng), 1u);
}

TEST(Delay, UniformWithinBounds) {
  UniformDelay d(5, 9);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Time t = d.delay(0, 1, 0, rng);
    EXPECT_GE(t, 5u);
    EXPECT_LE(t, 9u);
  }
}

TEST(Delay, JitterSpikes) {
  JitterDelay d(5, 1000, 0.5);
  Rng rng(1);
  bool saw_spike = false, saw_fast = false;
  for (int i = 0; i < 100; ++i) {
    const Time t = d.delay(0, 1, 0, rng);
    if (t == 1000) saw_spike = true;
    if (t <= 6) saw_fast = true;
  }
  EXPECT_TRUE(saw_spike);
  EXPECT_TRUE(saw_fast);
}

TEST(Sim, ProcessesMustAttachInIdOrder) {
  Network net(std::make_unique<FixedDelay>(1), 1, 2);
  SelfEcho p0(net, 0);
  EXPECT_THROW(SelfEcho bad(net, 5), CheckError);
}

TEST(Message, DigestBindsTypeAndPayload) {
  const PingMsg a(1), b(2);
  EXPECT_NE(a.digest(), b.digest());
  const PingMsg a2(1);
  EXPECT_EQ(a.digest(), a2.digest());
}

}  // namespace
}  // namespace bgla::sim
