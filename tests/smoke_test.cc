#include <gtest/gtest.h>
#include "harness/scenario.h"

using namespace bgla;

TEST(Smoke, WtsNoFault) {
  harness::WtsScenario sc;
  sc.n = 4; sc.f = 1; sc.adversary = harness::Adversary::kNone;
  auto rep = harness::run_wts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_LE(rep.max_depth, 2 * sc.f + 5);
}

TEST(Smoke, WtsEquivocator) {
  harness::WtsScenario sc;
  sc.n = 4; sc.f = 1; sc.adversary = harness::Adversary::kEquivocator;
  auto rep = harness::run_wts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST(Smoke, Gwts) {
  harness::GwtsScenario sc;
  sc.n = 4; sc.f = 1; sc.adversary = harness::Adversary::kNone;
  sc.target_decisions = 4;
  auto rep = harness::run_gwts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST(Smoke, GwtsStaleNacker) {
  harness::GwtsScenario sc;
  sc.n = 7; sc.f = 2; sc.byz_count = 2;
  sc.adversary = harness::Adversary::kStaleNacker;
  sc.target_decisions = 3;
  auto rep = harness::run_gwts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST(Smoke, FaleiroCleanAndViolation) {
  harness::FaleiroScenario sc;
  sc.n = 3; sc.f = 1;
  auto rep = harness::run_faleiro(sc);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  sc.byz_lying_acker = true;
  sc.sched = harness::Sched::kTargeted;
  auto rep2 = harness::run_faleiro(sc);
  EXPECT_FALSE(rep2.spec.comparability);  // the T7 violation
}

TEST(Smoke, SbsNoFault) {
  harness::SbsScenario sc;
  sc.n = 4; sc.f = 1; sc.adversary = harness::Adversary::kNone;
  auto rep = harness::run_sbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_LE(rep.max_depth, 4 * sc.f + 5);
}

TEST(Smoke, SbsDoubleSigner) {
  harness::SbsScenario sc;
  sc.n = 7; sc.f = 2; sc.byz_count = 2;
  sc.adversary = harness::Adversary::kEquivocator;
  auto rep = harness::run_sbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_LE(rep.max_refinements, 2 * sc.f);
}

TEST(Smoke, SbsFakeConflict) {
  harness::SbsScenario sc;
  sc.n = 4; sc.f = 1; sc.adversary = harness::Adversary::kStaleNacker;
  auto rep = harness::run_sbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST(Smoke, RsmClean) {
  harness::RsmScenario sc;
  sc.n = 4; sc.f = 1; sc.num_clients = 2; sc.ops_per_client = 4;
  auto rep = harness::run_rsm(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.check.ok()) << rep.check.diagnostic;
}

TEST(Smoke, RsmByzantine) {
  harness::RsmScenario sc;
  sc.n = 4; sc.f = 1; sc.byz_replicas = 1; sc.with_byz_client = true;
  sc.num_clients = 2; sc.ops_per_client = 4;
  auto rep = harness::run_rsm(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.check.ok()) << rep.check.diagnostic;
}

TEST(Smoke, Gsbs) {
  harness::GsbsScenario sc;
  sc.n = 4; sc.f = 1; sc.adversary = harness::Adversary::kNone;
  sc.target_decisions = 4;
  auto rep = harness::run_gsbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST(Smoke, GsbsDoubleSigner) {
  harness::GsbsScenario sc;
  sc.n = 4; sc.f = 1; sc.adversary = harness::Adversary::kEquivocator;
  sc.target_decisions = 3;
  auto rep = harness::run_gsbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}
