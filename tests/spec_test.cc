// Tests for the executable specifications themselves: every property of
// §3.1 / §6.1 must be *detectable* — we hand the checkers synthetic views
// containing exactly one violation and assert it is flagged with the right
// bit, and that clean views pass.
#include <gtest/gtest.h>

#include "la/spec.h"
#include "lattice/set_elem.h"

namespace bgla::la {
namespace {

using lattice::Item;
using lattice::make_set;

Elem s(std::initializer_list<std::uint64_t> xs) {
  std::set<Item> items;
  for (auto x : xs) items.insert(Item{x, 0, 0});
  return make_set(std::move(items));
}

LaView view(ProcessId id, Elem proposal, Elem decision) {
  LaView v;
  v.id = id;
  v.proposal = std::move(proposal);
  v.decision = std::move(decision);
  return v;
}

TEST(LaSpec, CleanRunPasses) {
  std::vector<LaView> views = {
      view(0, s({1}), s({1, 2})),
      view(1, s({2}), s({1, 2})),
      view(2, s({3}), s({1, 2, 3})),
  };
  const auto res = check_la(views, {}, 0);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

TEST(LaSpec, DetectsMissingDecision) {
  std::vector<LaView> views = {view(0, s({1}), s({1}))};
  views.push_back({});
  views.back().id = 1;
  views.back().proposal = s({2});  // no decision
  const auto res = check_la(views, {}, 0);
  EXPECT_FALSE(res.liveness);
  EXPECT_NE(res.diagnostic.find("liveness"), std::string::npos);
}

TEST(LaSpec, DetectsIncomparableDecisions) {
  std::vector<LaView> views = {
      view(0, s({1}), s({1})),
      view(1, s({2}), s({2})),
  };
  const auto res = check_la(views, {}, 0);
  EXPECT_FALSE(res.comparability);
  EXPECT_TRUE(res.liveness);
}

TEST(LaSpec, DetectsInclusivityViolation) {
  std::vector<LaView> views = {
      view(0, s({1}), s({2})),  // own proposal missing
      view(1, s({2}), s({2})),
  };
  const auto res = check_la(views, {}, 0);
  EXPECT_FALSE(res.inclusivity);
}

TEST(LaSpec, DetectsValueFromNowhere) {
  std::vector<LaView> views = {
      view(0, s({1}), s({1, 99})),  // 99 proposed by nobody
      view(1, s({2}), s({1, 2, 99})),
  };
  const auto res = check_la(views, {}, 0);
  EXPECT_FALSE(res.non_triviality);
}

TEST(LaSpec, AllowsByzantineValuesUpToF) {
  // 99 was disclosed by Byzantine process 2 (appears in SvS views).
  std::vector<LaView> views = {
      view(0, s({1}), s({1, 99})),
      view(1, s({2}), s({1, 2, 99})),
  };
  views[0].svs[2] = s({99});
  views[1].svs[2] = s({99});
  const auto res = check_la(views, {2}, /*f=*/1);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

TEST(LaSpec, FlagsMoreThanFByzantineValues) {
  std::vector<LaView> views = {
      view(0, s({1}), s({1, 98, 99})),
  };
  views[0].svs[2] = s({98});
  views[0].svs[3] = s({99});
  const auto res = check_la(views, {2, 3}, /*f=*/1);  // |B| = 2 > f = 1
  EXPECT_FALSE(res.non_triviality);
}

TEST(LaSpec, FlagsInconsistentByzantineDisclosure) {
  // Two correct processes attribute different values to the same
  // Byzantine — reliable broadcast should have made that impossible.
  std::vector<LaView> views = {
      view(0, s({1}), s({1})),
      view(1, s({2}), s({1, 2})),
  };
  views[0].svs[3] = s({71});
  views[1].svs[3] = s({72});
  const auto res = check_la(views, {3}, 1);
  EXPECT_FALSE(res.non_triviality);
}

TEST(LaSpec, FlagsInadmissibleByzantineValue) {
  std::vector<LaView> views = {
      view(0, s({1}), s({1, 999})),
  };
  views[0].svs[2] = s({999});
  const auto admissible = [](const Elem& e) {
    return lattice::all_items(e,
                              [](const Item& it) { return it.a < 100; });
  };
  const auto res = check_la(views, {2}, 1, admissible);
  EXPECT_FALSE(res.non_triviality);
}

TEST(LaSpec, BottomProposalNeedsNoInclusion) {
  std::vector<LaView> views = {
      view(0, Elem(), s({2})),  // pure acceptor
      view(1, s({2}), s({2})),
  };
  const auto res = check_la(views, {}, 0);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

// ---- generalised checker ----

GlaView gview(ProcessId id, std::vector<Elem> submitted,
              std::vector<Elem> decisions) {
  GlaView v;
  v.id = id;
  v.submitted = std::move(submitted);
  v.decisions = std::move(decisions);
  return v;
}

TEST(GlaSpec, CleanRunPasses) {
  std::vector<GlaView> views = {
      gview(0, {s({1})}, {s({1}), s({1, 2})}),
      gview(1, {s({2})}, {s({1, 2})}),
  };
  const auto res = check_gla(views, Elem(), 1);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

TEST(GlaSpec, DetectsTooFewDecisions) {
  std::vector<GlaView> views = {gview(0, {}, {s({1})})};
  const auto res = check_gla(views, Elem(), 3);
  EXPECT_FALSE(res.liveness);
}

TEST(GlaSpec, DetectsDecreasingSequence) {
  std::vector<GlaView> views = {
      gview(0, {}, {s({1, 2}), s({1})}),  // shrank
  };
  const auto res = check_gla(views, s({1, 2}), 1);
  EXPECT_FALSE(res.local_stability);
}

TEST(GlaSpec, DetectsCrossProcessIncomparability) {
  std::vector<GlaView> views = {
      gview(0, {s({1})}, {s({1})}),
      gview(1, {s({2})}, {s({2})}),
  };
  const auto res = check_gla(views, Elem(), 1);
  EXPECT_FALSE(res.comparability);
}

TEST(GlaSpec, DetectsMissingSubmission) {
  std::vector<GlaView> views = {
      gview(0, {s({1}), s({5})}, {s({1})}),  // 5 never decided
  };
  const auto res = check_gla(views, Elem(), 1);
  EXPECT_FALSE(res.inclusivity);
}

TEST(GlaSpec, DetectsUnattributedValues) {
  std::vector<GlaView> views = {
      gview(0, {s({1})}, {s({1, 50})}),  // 50 from nowhere
  };
  const auto res = check_gla(views, Elem(), 1);
  EXPECT_FALSE(res.non_triviality);
}

TEST(GlaSpec, ByzantineDisclosureBudgetAccepted) {
  std::vector<GlaView> views = {
      gview(0, {s({1})}, {s({1, 50})}),
  };
  const auto res = check_gla(views, /*byz_disclosed=*/s({50}), 1);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

TEST(GlaSpec, EmptyViewsPass) {
  const auto res = check_gla({}, Elem(), 0);
  EXPECT_TRUE(res.ok());
}

TEST(GlaSpec, SafeIgnoresLiveness) {
  std::vector<GlaView> views = {gview(0, {}, {})};
  const auto res = check_gla(views, Elem(), 5);
  EXPECT_FALSE(res.liveness);
  EXPECT_TRUE(res.safe());
}

}  // namespace
}  // namespace bgla::la
