// Store layer: WAL append/recover round trips, the corruption policy
// (torn tails truncated, corrupt records and length bombs quarantined,
// never a crash), atomic snapshots, and ReplicaStore orchestration
// (incarnation bumps, compaction, recovery precedence).
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "la/gwts.h"
#include "la/recovery.h"
#include "lattice/codec.h"
#include "lattice/set_elem.h"
#include "sim/network.h"
#include "store/replica_store.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "util/codec.h"

namespace bgla {
namespace {

using store::ReplicaStore;
using store::WalRecovery;
using store::WalWriter;

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

std::vector<Bytes> write_sample_wal(const std::string& path, int n) {
  std::vector<Bytes> records;
  WalWriter w;
  w.open(path);
  for (int i = 0; i < n; ++i) {
    records.push_back(bytes_of("record-" + std::to_string(i) +
                               std::string(static_cast<std::size_t>(i * 7),
                                           static_cast<char>('a' + i))));
    w.append(BytesView(records.back()));
  }
  w.close();
  return records;
}

TEST(Wal, RoundTripsRecords) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const std::string path = dir + "/wal.log";
  const auto records = write_sample_wal(path, 5);

  const WalRecovery r = store::recover_wal(path);
  EXPECT_TRUE(r.clean());
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(r.records[i], records[i]) << "record " << i;
  }
}

TEST(Wal, MissingFileIsEmptyAndClean) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const WalRecovery r = store::recover_wal(dir + "/nope.log");
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.torn_tail);
}

TEST(Wal, TornTailIsTruncatedAtEveryCutPoint) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const std::string path = dir + "/wal.log";
  const auto records = write_sample_wal(path, 3);
  const Bytes full = read_file(path);

  // Cut the file after every byte position past the magic: recovery must
  // never crash, must return an intact prefix, and must leave the file
  // recoverable-clean on a second pass.
  for (std::size_t cut = 8; cut < full.size(); ++cut) {
    write_file(path, Bytes(full.begin(),
                           full.begin() + static_cast<std::ptrdiff_t>(cut)));
    const WalRecovery r = store::recover_wal(path);
    EXPECT_TRUE(r.clean()) << "cut=" << cut;
    EXPECT_LE(r.records.size(), records.size());
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i], records[i]);
    }
    if (cut < full.size()) {
      // Unless the cut landed exactly on a record boundary, a tail was
      // torn off and the loss must be reported.
      const WalRecovery again = store::recover_wal(path);
      EXPECT_TRUE(again.clean());
      EXPECT_FALSE(again.torn_tail) << "file not repaired at cut=" << cut;
      EXPECT_EQ(again.records.size(), r.records.size());
    }
  }
}

TEST(Wal, CorruptRecordIsQuarantinedLoudly) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const std::string path = dir + "/wal.log";
  const auto records = write_sample_wal(path, 4);
  Bytes full = read_file(path);

  // Flip one payload byte of the third record: records 0-1 survive, the
  // suffix is quarantined, and the incident is reported.
  std::size_t pos = 8;  // skip magic
  for (int skip = 0; skip < 2; ++skip) {
    const std::uint32_t len = (std::uint32_t(full[pos]) << 24) |
                              (std::uint32_t(full[pos + 1]) << 16) |
                              (std::uint32_t(full[pos + 2]) << 8) |
                              std::uint32_t(full[pos + 3]);
    pos += 12 + len;
  }
  full[pos + 12] ^= 0x40;  // first payload byte of record 2
  write_file(path, full);

  const WalRecovery r = store::recover_wal(path);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(r.quarantined);
  EXPECT_NE(r.detail.find("checksum mismatch"), std::string::npos)
      << r.detail;
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0], records[0]);
  EXPECT_EQ(r.records[1], records[1]);
  EXPECT_TRUE(file_exists(path + ".quarantine"));

  // The good prefix stays usable.
  const WalRecovery again = store::recover_wal(path);
  EXPECT_TRUE(again.clean());
  EXPECT_EQ(again.records.size(), 2u);
}

TEST(Wal, RecordLengthBombIsQuarantined) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const std::string path = dir + "/wal.log";
  write_sample_wal(path, 1);
  Bytes full = read_file(path);
  // Append a header claiming a ~1 GiB record.
  const Bytes bomb = {0x40, 0x00, 0x00, 0x00, 1, 2, 3, 4, 5, 6, 7, 8};
  full.insert(full.end(), bomb.begin(), bomb.end());
  write_file(path, full);

  const WalRecovery r = store::recover_wal(path);
  EXPECT_TRUE(r.quarantined);
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_NE(r.detail.find("claims length"), std::string::npos) << r.detail;
}

TEST(Wal, BadMagicQuarantinesWholeFile) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const std::string path = dir + "/wal.log";
  write_file(path, bytes_of("definitely not a wal file"));
  const WalRecovery r = store::recover_wal(path);
  EXPECT_TRUE(r.quarantined);
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(file_exists(path + ".quarantine"));
  // The original is emptied, so a writer can start fresh.
  EXPECT_TRUE(store::recover_wal(path).clean());
}

TEST(Wal, ResetToEmptyDropsRecords) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const std::string path = dir + "/wal.log";
  WalWriter w;
  w.open(path);
  w.append(BytesView(bytes_of("one")));
  w.reset_to_empty();
  w.append(BytesView(bytes_of("two")));
  w.close();
  const WalRecovery r = store::recover_wal(path);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], bytes_of("two"));
}

TEST(Snapshot, RoundTripsAndReplacesAtomically) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const std::string path = dir + "/snapshot.bin";
  EXPECT_FALSE(store::read_snapshot(path).found);

  store::write_snapshot(path, BytesView(bytes_of("state v1")));
  auto r1 = store::read_snapshot(path);
  EXPECT_TRUE(r1.found);
  EXPECT_TRUE(r1.valid);
  EXPECT_EQ(r1.payload, bytes_of("state v1"));

  store::write_snapshot(path, BytesView(bytes_of("state v2, longer")));
  auto r2 = store::read_snapshot(path);
  EXPECT_TRUE(r2.valid);
  EXPECT_EQ(r2.payload, bytes_of("state v2, longer"));
}

TEST(Snapshot, CorruptionIsQuarantined) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  const std::string path = dir + "/snapshot.bin";
  store::write_snapshot(path, BytesView(bytes_of("precious state")));
  Bytes raw = read_file(path);
  raw[raw.size() - 3] ^= 0x01;
  write_file(path, raw);

  auto r = store::read_snapshot(path);
  EXPECT_TRUE(r.found);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.detail.find("checksum mismatch"), std::string::npos)
      << r.detail;
  EXPECT_TRUE(file_exists(path + ".quarantine"));
  // After quarantine the slot reads as absent, not as an error loop.
  EXPECT_FALSE(store::read_snapshot(path).found);
}

TEST(ReplicaStore, FreshDirThenRecovery) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  {
    ReplicaStore s(dir + "/node0");
    EXPECT_FALSE(s.found());
    EXPECT_TRUE(s.clean());
    EXPECT_EQ(s.incarnation(), 1u);
    s.persist(BytesView(bytes_of("state-1")));
    s.persist(BytesView(bytes_of("state-2")));
  }
  {
    ReplicaStore s(dir + "/node0");
    EXPECT_TRUE(s.found());
    EXPECT_TRUE(s.clean());
    EXPECT_EQ(s.incarnation(), 2u);
    ASSERT_EQ(s.wal_records().size(), 2u);
    EXPECT_EQ(s.wal_records().back(), bytes_of("state-2"));
  }
  EXPECT_EQ(ReplicaStore::peek_latest_state(dir + "/node0"),
            bytes_of("state-2"));
}

TEST(ReplicaStore, CompactionFoldsWalIntoSnapshot) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  {
    ReplicaStore s(dir + "/node0", /*compact_every=*/4);
    for (int i = 1; i <= 9; ++i) {
      s.persist(BytesView(bytes_of("state-" + std::to_string(i))));
    }
  }
  {
    ReplicaStore s(dir + "/node0", 4);
    EXPECT_TRUE(s.found());
    // 9 appends with compact_every=4: folds at 4 and 8, one WAL record
    // (state-9) after the last fold, snapshot holds state-8.
    EXPECT_EQ(s.snapshot(), bytes_of("state-8"));
    ASSERT_EQ(s.wal_records().size(), 1u);
    EXPECT_EQ(s.wal_records()[0], bytes_of("state-9"));
  }
  EXPECT_EQ(ReplicaStore::peek_latest_state(dir + "/node0"),
            bytes_of("state-9"));
}

TEST(ReplicaStore, ByteBudgetTriggersEarlyFold) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  ReplicaStore s(dir + "/node0", /*compact_every=*/100);
  s.set_max_wal_bytes(64);

  // Small records stay under the budget: no fold.
  EXPECT_FALSE(s.due_for_compact(20));
  EXPECT_FALSE(s.persist(BytesView(bytes_of(std::string(20, 'a')))));
  EXPECT_FALSE(s.persist(BytesView(bytes_of(std::string(20, 'b')))));
  // The third 20-byte record pushes payload past 64: persist folds even
  // though the append counter (100) is nowhere near due.
  EXPECT_TRUE(s.due_for_compact(30));
  EXPECT_TRUE(s.persist(BytesView(bytes_of(std::string(30, 'c')))));
  // The fold reset the byte counter.
  EXPECT_FALSE(s.due_for_compact(20));
  EXPECT_FALSE(s.persist(BytesView(bytes_of(std::string(20, 'd')))));

  ReplicaStore again(dir + "/node0", 100);
  EXPECT_EQ(again.snapshot(), bytes_of(std::string(30, 'c')));
  ASSERT_EQ(again.wal_records().size(), 1u);
  EXPECT_EQ(again.wal_records()[0], bytes_of(std::string(20, 'd')));
}

// Runs a short GWTS cluster and returns process 0's exported state blob
// (v3 format), leaving the donor process alive in `*donor` for
// comparison. The run decides enough that compaction has work to do.
Bytes export_gwts_state(sim::Network& net,
                        std::vector<std::unique_ptr<la::GwtsProcess>>& procs,
                        bool compact) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
    for (std::uint64_t k = 0; k < 3; ++k) {
      procs[id]->submit(
          lattice::make_set({lattice::Item{id, 900 + 8 * k + id, 0}}));
    }
  }
  net.run(4'000'000);
  if (compact) procs[0]->compact_decided_prefix(/*keep_tail=*/1);
  Encoder enc;
  procs[0]->export_state(enc);
  return enc.bytes();
}

// A version-2 blob (no fold counters) must still import: v3 only
// inserted the two varint counters, so a v2 body is a v3 body with the
// counters spliced out and the header version rewound. Build exactly
// that from a live export and check both the summarizer and a fresh
// process accept it with zero folds.
TEST(StateFormat, V2BlobWithoutFoldCountersImports) {
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), 77, 4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  const Bytes v3 = export_gwts_state(net, procs, /*compact=*/true);
  ASSERT_GT(procs[0]->folded_submitted() + procs[0]->folded_decisions(), 0u);

  // Walk the v3 prefix with the public decoders to find the counters.
  Decoder dec{BytesView(v3)};
  dec.get_u32();  // version
  const std::size_t version_len = v3.size() - dec.remaining();
  dec.get_u8();  // tag
  dec.get_u64();  // round
  dec.get_u64();  // ts
  dec.get_u64();  // safe_r
  dec.get_u64();  // ack_tag_counter
  dec.get_bool();  // in_round
  for (int i = 0; i < 5; ++i) lattice::decode_elem(dec);  // core elems
  const std::size_t counters_at = v3.size() - dec.remaining();
  dec.get_varint();  // folded_submitted
  dec.get_varint();  // folded_decisions
  const std::size_t counters_end = v3.size() - dec.remaining();

  Encoder v2enc;
  v2enc.put_u32(2);
  Bytes v2 = v2enc.bytes();
  v2.insert(v2.end(), v3.begin() + static_cast<std::ptrdiff_t>(version_len),
            v3.begin() + static_cast<std::ptrdiff_t>(counters_at));
  v2.insert(v2.end(), v3.begin() + static_cast<std::ptrdiff_t>(counters_end),
            v3.end());

  const la::StateSummary s2 = la::summarize_state(BytesView(v2));
  const la::StateSummary s3 = la::summarize_state(BytesView(v3));
  EXPECT_EQ(s2.folded_submitted, 0u);
  EXPECT_EQ(s2.folded_decisions, 0u);
  EXPECT_EQ(s2.submitted.size(), s3.submitted.size());
  EXPECT_EQ(s2.decisions.size(), s3.decisions.size());

  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net2(std::make_unique<sim::UniformDelay>(1, 10), 1, 4);
  la::GwtsProcess p(net2, 0, cfg);
  Decoder d2{BytesView(v2)};
  p.import_state(d2);
  EXPECT_EQ(p.folded_submitted(), 0u);
  EXPECT_EQ(p.folded_decisions(), 0u);
  // Same live state as the donor: re-export (v3, zero counters) must
  // match the donor's export with its counters zeroed out — i.e. equal
  // everywhere but the spliced span.
  Encoder re;
  p.export_state(re);
  Bytes expect(v3.begin(), v3.begin() + static_cast<std::ptrdiff_t>(counters_at));
  expect.push_back(0);  // folded_submitted = 0
  expect.push_back(0);  // folded_decisions = 0
  expect.insert(expect.end(),
                v3.begin() + static_cast<std::ptrdiff_t>(counters_end),
                v3.end());
  EXPECT_EQ(re.bytes(), expect);
}

// End-to-end compaction flow the node host runs: when the store says a
// fold is due, compact the process's decided prefix first, then fold the
// *smaller* blob into the snapshot. A reopened store + fresh process must
// recover the same decided frontier.
TEST(ReplicaStore, ProcessFoldThenStoreCompactRoundTrips) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), 21, 4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  const Bytes full = export_gwts_state(net, procs, /*compact=*/false);

  ReplicaStore s(dir + "/node0", /*compact_every=*/1000);
  s.set_max_wal_bytes(1);  // every record is over budget: always due
  ASSERT_TRUE(s.due_for_compact(full.size()));

  // The host path: fold process state, re-export, compact with the
  // smaller blob.
  procs[0]->compact_decided_prefix(/*keep_tail=*/1);
  Encoder enc;
  procs[0]->export_state(enc);
  const Bytes compacted = enc.bytes();
  EXPECT_LT(compacted.size(), full.size());
  s.compact(BytesView(compacted));

  ReplicaStore again(dir + "/node0", 1000);
  EXPECT_TRUE(again.found());
  EXPECT_TRUE(again.clean());
  EXPECT_EQ(again.snapshot(), compacted);
  EXPECT_TRUE(again.wal_records().empty());

  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net2(std::make_unique<sim::UniformDelay>(1, 10), 1, 4);
  la::GwtsProcess p(net2, 0, cfg);
  Decoder dec{BytesView(again.snapshot())};
  p.import_state(dec);
  Encoder a;
  Encoder b;
  p.decided_set().encode(a);
  procs[0]->decided_set().encode(b);
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_EQ(p.folded_submitted(), procs[0]->folded_submitted());
  EXPECT_EQ(p.folded_decisions(), procs[0]->folded_decisions());
}

TEST(ReplicaStore, IncarnationSurvivesCorruptState) {
  const std::string dir = store::make_temp_dir("bgla-store-");
  {
    ReplicaStore s(dir + "/node0");
    s.persist(BytesView(bytes_of("good")));
  }
  // Corrupt the WAL record body.
  Bytes raw = read_file(dir + "/node0/wal.log");
  raw.back() ^= 0xff;
  write_file(dir + "/node0/wal.log", raw);
  {
    ReplicaStore s(dir + "/node0");
    EXPECT_EQ(s.incarnation(), 2u);
    EXPECT_FALSE(s.clean());
    ASSERT_FALSE(s.notes().empty());
    EXPECT_TRUE(s.wal_records().empty());
  }
}

}  // namespace
}  // namespace bgla
