// Thread pool used by the sweep tool and benches to fan out independent
// simulations. The tests pin down the two properties the harness relies
// on: parallel_for_indexed returns results in index order regardless of
// execution interleaving, and running whole simulations on worker threads
// produces bit-identical reports to a serial run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "harness/scenario.h"
#include "util/thread_pool.h"

using namespace bgla;

namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 10 * (round + 1));
  }
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForIndexedPreservesIndexOrder) {
  util::ThreadPool pool(8);
  const std::size_t kN = 500;
  const auto results = util::parallel_for_indexed<std::size_t>(
      pool, kN, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPool, ParallelForIndexedHandlesEmptyRange) {
  util::ThreadPool pool(2);
  const auto results =
      util::parallel_for_indexed<int>(pool, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

// The property the sweep harness depends on: a simulation run on a worker
// thread (each sim owning its Network, RNG and SignatureAuthority) yields
// the same report as the same scenario run serially.
TEST(ThreadPool, ParallelSimulationsMatchSerialRuns) {
  const int kSeeds = 4;
  std::vector<harness::SbsReport> serial;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    harness::SbsScenario sc;
    sc.n = 4;
    sc.f = 1;
    sc.byz_count = 1;
    sc.adversary = harness::Adversary::kEquivocator;
    sc.seed = static_cast<std::uint64_t>(seed);
    serial.push_back(harness::run_sbs(sc));
  }

  util::ThreadPool pool(4);
  const auto parallel = util::parallel_for_indexed<harness::SbsReport>(
      pool, kSeeds, [](std::size_t i) {
        harness::SbsScenario sc;
        sc.n = 4;
        sc.f = 1;
        sc.byz_count = 1;
        sc.adversary = harness::Adversary::kEquivocator;
        sc.seed = static_cast<std::uint64_t>(i) + 1;
        return harness::run_sbs(sc);
      });

  ASSERT_EQ(parallel.size(), serial.size());
  for (int i = 0; i < kSeeds; ++i) {
    EXPECT_EQ(parallel[i].spec.ok(), serial[i].spec.ok());
    EXPECT_EQ(parallel[i].total_msgs, serial[i].total_msgs);
    EXPECT_EQ(parallel[i].events, serial[i].events);
    EXPECT_EQ(parallel[i].end_time, serial[i].end_time);
    EXPECT_EQ(parallel[i].max_depth, serial[i].max_depth);
    EXPECT_EQ(parallel[i].max_bytes_per_correct,
              serial[i].max_bytes_per_correct);
    EXPECT_EQ(parallel[i].crypto.macs_computed,
              serial[i].crypto.macs_computed);
    EXPECT_EQ(parallel[i].crypto.verify_cache_hits,
              serial[i].crypto.verify_cache_hits);
  }
}

}  // namespace
