// Round-trips every trace event kind through the JSONL writer and the
// schema validator (obs/trace.h, obs/schema.h, obs/jsonl.h): every emitter
// in the tree goes through TraceWriter::to_jsonl, so if each kind's
// required-field table round-trips here, bgla_trace can parse anything the
// cluster writes. Also covers the validator's rejection paths and the flat
// JSON parser's edge cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/instrument.h"
#include "obs/jsonl.h"
#include "obs/schema.h"
#include "obs/trace.h"

namespace bgla::obs {
namespace {

/// Builds an event of the given kind carrying exactly its required fields
/// (values are arbitrary; the schema checks presence and type).
TraceEvent make_event(std::size_t kind_index) {
  TraceEvent ev;
  ev.kind = static_cast<EventKind>(kind_index);
  ev.node = 3;
  const KindSpec& spec = kind_spec(kind_index);
  for (std::size_t i = 0; i < spec.num_fields; ++i) {
    if (spec.fields[i].is_str) {
      ev.with(spec.fields[i].key, std::string("x"));
    } else {
      ev.with(spec.fields[i].key, std::uint64_t{42});
    }
  }
  return ev;
}

TEST(TraceSchemaTest, EveryKindRoundTripsThroughToJsonl) {
  for (std::size_t ki = 0; ki < kNumEventKinds; ++ki) {
    const std::string line =
        TraceWriter::to_jsonl(make_event(ki), /*inc=*/2, /*seq=*/7,
                              /*wall_us=*/1722890000123456ull,
                              /*steady_us=*/500);
    FlatJson obj;
    std::string err;
    ASSERT_TRUE(validate_trace_jsonl(line, ki + 1, &obj, &err))
        << "kind " << kind_name(static_cast<EventKind>(ki)) << ": " << err
        << "\n  line: " << line;
    EXPECT_EQ(obj.at("kind").str, kind_name(static_cast<EventKind>(ki)));
    EXPECT_EQ(obj.at("v").u64, kTraceSchemaVersion);
    EXPECT_EQ(obj.at("node").u64, 3u);
    EXPECT_EQ(obj.at("inc").u64, 2u);
    EXPECT_EQ(obj.at("seq").u64, 7u);
    EXPECT_EQ(obj.at("wall_us").u64, 1722890000123456ull);
  }
}

TEST(TraceSchemaTest, KindNamesRoundTripThroughIndexLookup) {
  for (std::size_t ki = 0; ki < kNumEventKinds; ++ki) {
    EXPECT_EQ(kind_index_from_name(kind_name(static_cast<EventKind>(ki))),
              ki);
  }
  EXPECT_EQ(kind_index_from_name("bogus"), kNumEventKinds);
}

TEST(TraceSchemaTest, WriterPersistsEveryKindWithMonotonicSeq) {
  const std::string path =
      testing::TempDir() + "/bgla_trace_schema_test.jsonl";
  {
    TraceWriter::Options opt;
    opt.path = path;
    opt.incarnation = 5;
    TraceWriter w(opt);
    for (std::size_t ki = 0; ki < kNumEventKinds; ++ki) {
      w.record(make_event(ki));
    }
    w.flush();
    EXPECT_EQ(w.recorded(), kNumEventKinds);
    EXPECT_EQ(w.dropped(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  std::uint64_t prev_seq = 0;
  while (std::getline(in, line)) {
    FlatJson obj;
    std::string err;
    ASSERT_TRUE(validate_trace_jsonl(line, lines + 1, &obj, &err)) << err;
    EXPECT_EQ(obj.at("inc").u64, 5u);
    EXPECT_EQ(obj.at("kind").str,
              kind_name(static_cast<EventKind>(lines)));
    if (lines > 0) {
      EXPECT_GT(obj.at("seq").u64, prev_seq);
    }
    prev_seq = obj.at("seq").u64;
    ++lines;
  }
  EXPECT_EQ(lines, kNumEventKinds);
  std::remove(path.c_str());
}

TEST(TraceSchemaTest, InstrumentHooksEmitSchemaValidEvents) {
  const std::string path =
      testing::TempDir() + "/bgla_trace_instrument_test.jsonl";
  {
    TraceWriter::Options opt;
    opt.path = path;
    TraceWriter w(opt);
    Instrument instr(nullptr, &w);  // trace-only: metrics sink absent
    instr.on_propose(1, 7, 0);
    instr.on_submit(1, 2);
    instr.on_ack(1, 2);
    instr.on_nack(1, 3);
    instr.on_refine(1, 7, 1);
    instr.on_round_advance(1, 1);
    instr.on_decide(1, 7, 1, 1, 42);
    instr.on_persist(1, 256, 9);
    instr.on_rejoin_start(1);
    instr.on_rejoin_done(1, 1234);
    w.flush();
    EXPECT_EQ(w.dropped(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    FlatJson obj;
    std::string err;
    ASSERT_TRUE(validate_trace_jsonl(line, lines + 1, &obj, &err)) << err;
    ++lines;
  }
  EXPECT_EQ(lines, 10u);
  std::remove(path.c_str());
}

TEST(TraceSchemaTest, UnopenablePathDropsEverythingButNeverBlocks) {
  TraceWriter::Options opt;
  opt.path = "/nonexistent-bgla-dir/trace.jsonl";
  TraceWriter w(opt);
  for (int i = 0; i < 3; ++i) w.record(make_event(0));
  w.flush();  // must return even though nothing reached disk
  EXPECT_EQ(w.recorded(), 3u);
  EXPECT_EQ(w.dropped(), 3u);
}

TEST(TraceSchemaTest, StringFieldsEscapeQuotesAndDropControlChars) {
  TraceEvent ev;
  ev.kind = EventKind::kFault;
  ev.node = 0;
  ev.with("fault", std::string("kill \"3\" \\ partition\nrest"));
  const std::string line = TraceWriter::to_jsonl(ev, 0, 0, 1, 1);
  // The line must stay a single line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  FlatJson obj;
  std::string err;
  ASSERT_TRUE(validate_trace_jsonl(line, 1, &obj, &err)) << err;
  // Quotes and backslashes survive the round trip; the control char is
  // dropped by the writer.
  EXPECT_EQ(obj.at("fault").str, "kill \"3\" \\ partitionrest");
}

TEST(TraceSchemaTest, RejectsWrongVersionUnknownKindAndMissingFields) {
  FlatJson obj;
  std::string err;

  const std::string envelope =
      "\"node\":1,\"inc\":0,\"seq\":0,\"wall_us\":1,\"steady_us\":1";

  // Wrong schema version.
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":2,\"kind\":\"rejoin_start\"," + envelope + "}", 1, &obj,
      &err));
  EXPECT_NE(err.find("unsupported schema version"), std::string::npos);

  // Unknown kind.
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"bogus\"," + envelope + "}", 1, &obj, &err));
  EXPECT_NE(err.find("unknown event kind"), std::string::npos);

  // Missing envelope field (no seq).
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"rejoin_start\",\"node\":1,\"inc\":0,"
      "\"wall_us\":1,\"steady_us\":1}",
      1, &obj, &err));
  EXPECT_NE(err.find("\"seq\""), std::string::npos);

  // Missing kind-required field: decide without latency_us.
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"decide\"," + envelope +
          ",\"proposal\":1,\"round\":1,\"refinements\":0}",
      1, &obj, &err));
  EXPECT_NE(err.find("latency_us"), std::string::npos);

  // Mistyped required field: node_start's protocol must be a string.
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"node_start\"," + envelope +
          ",\"protocol\":3,\"n\":4,\"f\":1}",
      1, &obj, &err));
  EXPECT_NE(err.find("wrong type"), std::string::npos);

  // Extra fields are allowed (forward compatibility).
  EXPECT_TRUE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"rejoin_start\"," + envelope +
          ",\"future_field\":\"ok\"}",
      1, &obj, &err))
      << err;
}

TEST(FlatJsonTest, ParsesWhitespaceAndEmptyObjects) {
  FlatJson obj;
  std::string err;
  EXPECT_TRUE(parse_flat_json("{}", &obj, &err)) << err;
  EXPECT_TRUE(obj.empty());
  EXPECT_TRUE(
      parse_flat_json("  { \"a\" : 1 , \"b\" : \"x y\" }  ", &obj, &err))
      << err;
  EXPECT_EQ(obj.at("a").u64, 1u);
  EXPECT_FALSE(obj.at("a").is_str);
  EXPECT_EQ(obj.at("b").str, "x y");
  EXPECT_TRUE(obj.at("b").is_str);
}

TEST(FlatJsonTest, RejectsNestingNegativesAndTrailingJunk) {
  FlatJson obj;
  std::string err;
  EXPECT_FALSE(parse_flat_json("{\"a\":{\"b\":1}}", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":[1]}", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":-1}", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":1} tail", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":\"unterminated}", &obj, &err));
  EXPECT_FALSE(parse_flat_json("not json", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":1", &obj, &err));
}

}  // namespace
}  // namespace bgla::obs
