// Round-trips every trace event kind through the JSONL writer and the
// schema validator (obs/trace.h, obs/schema.h, obs/jsonl.h): every emitter
// in the tree goes through TraceWriter::to_jsonl, so if each kind's
// required-field table round-trips here, bgla_trace can parse anything the
// cluster writes. Also covers the validator's rejection paths and the flat
// JSON parser's edge cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/instrument.h"
#include "obs/jsonl.h"
#include "obs/schema.h"
#include "obs/trace.h"

namespace bgla::obs {
namespace {

/// Builds an event of the given kind carrying exactly its required fields
/// (values are arbitrary; the schema checks presence and type).
TraceEvent make_event(std::size_t kind_index) {
  TraceEvent ev;
  ev.kind = static_cast<EventKind>(kind_index);
  ev.node = 3;
  const KindSpec& spec = kind_spec(kind_index);
  for (std::size_t i = 0; i < spec.num_fields; ++i) {
    if (spec.fields[i].is_str) {
      ev.with(spec.fields[i].key, std::string("x"));
    } else {
      ev.with(spec.fields[i].key, std::uint64_t{42});
    }
  }
  return ev;
}

TEST(TraceSchemaTest, EveryKindRoundTripsThroughToJsonl) {
  for (std::size_t ki = 0; ki < kNumEventKinds; ++ki) {
    const std::string line =
        TraceWriter::to_jsonl(make_event(ki), /*inc=*/2, /*seq=*/7,
                              /*wall_us=*/1722890000123456ull,
                              /*steady_us=*/500);
    FlatJson obj;
    std::string err;
    ASSERT_TRUE(validate_trace_jsonl(line, ki + 1, &obj, &err))
        << "kind " << kind_name(static_cast<EventKind>(ki)) << ": " << err
        << "\n  line: " << line;
    EXPECT_EQ(obj.at("kind").str, kind_name(static_cast<EventKind>(ki)));
    EXPECT_EQ(obj.at("v").u64, kTraceSchemaVersion);
    EXPECT_EQ(obj.at("node").u64, 3u);
    EXPECT_EQ(obj.at("inc").u64, 2u);
    EXPECT_EQ(obj.at("seq").u64, 7u);
    EXPECT_EQ(obj.at("wall_us").u64, 1722890000123456ull);
  }
}

TEST(TraceSchemaTest, KindNamesRoundTripThroughIndexLookup) {
  for (std::size_t ki = 0; ki < kNumEventKinds; ++ki) {
    EXPECT_EQ(kind_index_from_name(kind_name(static_cast<EventKind>(ki))),
              ki);
  }
  EXPECT_EQ(kind_index_from_name("bogus"), kNumEventKinds);
}

TEST(TraceSchemaTest, WriterPersistsEveryKindWithMonotonicSeq) {
  const std::string path =
      testing::TempDir() + "/bgla_trace_schema_test.jsonl";
  {
    TraceWriter::Options opt;
    opt.path = path;
    opt.incarnation = 5;
    TraceWriter w(opt);
    for (std::size_t ki = 0; ki < kNumEventKinds; ++ki) {
      w.record(make_event(ki));
    }
    w.flush();
    EXPECT_EQ(w.recorded(), kNumEventKinds);
    EXPECT_EQ(w.dropped(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  std::uint64_t prev_seq = 0;
  while (std::getline(in, line)) {
    FlatJson obj;
    std::string err;
    ASSERT_TRUE(validate_trace_jsonl(line, lines + 1, &obj, &err)) << err;
    EXPECT_EQ(obj.at("inc").u64, 5u);
    EXPECT_EQ(obj.at("kind").str,
              kind_name(static_cast<EventKind>(lines)));
    if (lines > 0) {
      EXPECT_GT(obj.at("seq").u64, prev_seq);
    }
    prev_seq = obj.at("seq").u64;
    ++lines;
  }
  EXPECT_EQ(lines, kNumEventKinds);
  std::remove(path.c_str());
}

TEST(TraceSchemaTest, InstrumentHooksEmitSchemaValidEvents) {
  const std::string path =
      testing::TempDir() + "/bgla_trace_instrument_test.jsonl";
  {
    TraceWriter::Options opt;
    opt.path = path;
    TraceWriter w(opt);
    Instrument instr(nullptr, &w);  // trace-only: metrics sink absent
    instr.on_propose(1, 7, 0);
    instr.on_submit(1, 2);
    instr.on_ack(1, 2);
    instr.on_nack(1, 3);
    instr.on_refine(1, 7, 1);
    instr.on_round_advance(1, 1);
    instr.on_decide(1, 7, 1, 1, 42);
    instr.on_persist(1, 256, 9);
    instr.on_rejoin_start(1);
    instr.on_rejoin_done(1, 1234);
    w.flush();
    EXPECT_EQ(w.dropped(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    FlatJson obj;
    std::string err;
    ASSERT_TRUE(validate_trace_jsonl(line, lines + 1, &obj, &err)) << err;
    ++lines;
  }
  EXPECT_EQ(lines, 10u);
  std::remove(path.c_str());
}

TEST(TraceSchemaTest, UnopenablePathDropsEverythingButNeverBlocks) {
  TraceWriter::Options opt;
  opt.path = "/nonexistent-bgla-dir/trace.jsonl";
  Registry reg;
  opt.dropped_counter = &reg.counter("bgla_trace_dropped_total");
  TraceWriter w(opt);
  for (int i = 0; i < 3; ++i) w.record(make_event(0));
  w.flush();  // must return even though nothing reached disk
  EXPECT_EQ(w.recorded(), 3u);
  EXPECT_EQ(w.dropped(), 3u);
  // The registry mirror of the drop count powers the live /metrics view.
  EXPECT_EQ(reg.counter("bgla_trace_dropped_total").value(), 3u);
}

TEST(TraceSchemaTest, RingOverflowDropsOldestButNeverCorruptsJsonl) {
  const std::string path =
      testing::TempDir() + "/bgla_trace_overflow_test.jsonl";
  std::remove(path.c_str());
  Registry reg;
  constexpr std::uint64_t kEvents = 50000;
  std::uint64_t dropped = 0;
  {
    TraceWriter::Options opt;
    opt.path = path;
    opt.ring_capacity = 1;  // every burst of two in-flight events drops one
    opt.dropped_counter = &reg.counter("bgla_trace_dropped_total");
    TraceWriter w(opt);
    for (std::uint64_t i = 0; i < kEvents; ++i) w.record(make_event(0));
    w.flush();
    dropped = w.dropped();
    EXPECT_EQ(w.recorded() + dropped, kEvents);
  }
  // A single-slot ring hammered 50k times from one thread must overflow
  // (the writer thread does file I/O per event), and the registry mirror
  // must agree with the writer's own count.
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(reg.counter("bgla_trace_dropped_total").value(), dropped);
  // Whatever survived is complete, schema-valid JSONL — drops lose whole
  // events, never halves of lines.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    FlatJson obj;
    std::string err;
    ASSERT_TRUE(validate_trace_jsonl(line, lines + 1, &obj, &err))
        << err << "\n  line: " << line;
    ++lines;
  }
  EXPECT_EQ(lines + dropped, kEvents);
  std::remove(path.c_str());
}

TEST(TraceSchemaTest, RolloverPreservesThePreviousIncarnationsLines) {
  const std::string path =
      testing::TempDir() + "/bgla_trace_rollover_test.jsonl";
  const std::string rolled = path + ".1";
  std::remove(path.c_str());
  std::remove(rolled.c_str());

  auto run_incarnation = [&](std::uint64_t inc, std::size_t events) {
    TraceWriter::Options opt;
    opt.path = path;
    opt.incarnation = inc;
    opt.rollover = true;
    TraceWriter w(opt);
    for (std::size_t i = 0; i < events; ++i) w.record(make_event(0));
    w.flush();
    EXPECT_EQ(w.dropped(), 0u);
  };
  auto read_incs = [&](const std::string& p) {
    std::vector<std::uint64_t> incs;
    std::ifstream in(p);
    std::string line;
    while (std::getline(in, line)) {
      FlatJson obj;
      std::string err;
      EXPECT_TRUE(validate_trace_jsonl(line, incs.size() + 1, &obj, &err))
          << err;
      incs.push_back(obj.at("inc").u64);
    }
    return incs;
  };

  run_incarnation(1, 3);
  run_incarnation(2, 2);  // restart re-using the path: must roll, not trunc

  const auto rolled_incs = read_incs(rolled);
  const auto live_incs = read_incs(path);
  EXPECT_EQ(rolled_incs, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(live_incs, (std::vector<std::uint64_t>{2, 2}));

  std::remove(path.c_str());
  std::remove(rolled.c_str());
}

TEST(TraceSchemaTest, SpanHooksEmitValidV2EventsAndFeedSinks) {
  const std::string path = testing::TempDir() + "/bgla_trace_span_test.jsonl";
  std::remove(path.c_str());
  Registry reg;
  FlightRecorder flight(/*capacity=*/4);
  std::uint64_t trace_id = 0;
  {
    TraceWriter::Options opt;
    opt.path = path;
    TraceWriter w(opt);
    Instrument instr(&reg, &w);
    instr.set_flight_recorder(&flight);

    // Disabled: on_span is a no-op on all three sinks.
    instr.on_span(3, "quorum", 1, 2, 0, 10);
    w.flush();
    EXPECT_EQ(w.recorded(), 0u);
    EXPECT_EQ(flight.size(), 0u);

    instr.enable_spans(/*node=*/3);
    const TraceContext root = instr.new_trace();
    ASSERT_TRUE(root.valid());
    trace_id = root.trace_id;
    // Node-unique nonzero ids: (node+1) << 32 | counter.
    EXPECT_EQ(root.trace_id >> 32, 4u);
    const std::uint64_t child = instr.new_span_id();
    EXPECT_NE(child, root.span_id);
    instr.on_span(3, "submit", root.trace_id, root.span_id, 0, 0);
    instr.on_span(3, "quorum", root.trace_id, child, root.span_id, 120,
                  "round", 7);
    w.flush();
    EXPECT_EQ(w.recorded(), 2u);
  }

  // File: schema-valid v2 span lines carrying the causal fields.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    FlatJson obj;
    std::string err;
    ASSERT_TRUE(validate_trace_jsonl(line, lines + 1, &obj, &err)) << err;
    EXPECT_EQ(obj.at("kind").str, "span");
    EXPECT_EQ(obj.at("v").u64, 2u);
    EXPECT_EQ(obj.at("trace").u64, trace_id);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);

  // Flight recorder: same two lines, oldest first.
  EXPECT_EQ(flight.size(), 2u);
  const std::string dump = flight.dump();
  EXPECT_NE(dump.find("\"phase\":\"submit\""), std::string::npos);
  EXPECT_NE(dump.find("\"phase\":\"quorum\""), std::string::npos);
  EXPECT_NE(dump.find("\"round\":7"), std::string::npos);

  // Registry: per-phase duration histogram.
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.histograms.at("bgla_span_dur_us{phase=\"quorum\"}").sum,
            120u);
  EXPECT_EQ(s.histograms.at("bgla_span_dur_us{phase=\"submit\"}").count,
            1u);
  std::remove(path.c_str());
}

TEST(TraceSchemaTest, FlightRecorderRingKeepsOnlyTheNewestLines) {
  FlightRecorder fr(/*capacity=*/3);
  for (int i = 0; i < 10; ++i) fr.add("line" + std::to_string(i));
  EXPECT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.dump(), "line7\nline8\nline9\n");
}

TEST(TraceSchemaTest, StringFieldsEscapeQuotesAndDropControlChars) {
  TraceEvent ev;
  ev.kind = EventKind::kFault;
  ev.node = 0;
  ev.with("fault", std::string("kill \"3\" \\ partition\nrest"));
  const std::string line = TraceWriter::to_jsonl(ev, 0, 0, 1, 1);
  // The line must stay a single line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  FlatJson obj;
  std::string err;
  ASSERT_TRUE(validate_trace_jsonl(line, 1, &obj, &err)) << err;
  // Quotes and backslashes survive the round trip; the control char is
  // dropped by the writer.
  EXPECT_EQ(obj.at("fault").str, "kill \"3\" \\ partitionrest");
}

TEST(TraceSchemaTest, RejectsWrongVersionUnknownKindAndMissingFields) {
  FlatJson obj;
  std::string err;

  const std::string envelope =
      "\"node\":1,\"inc\":0,\"seq\":0,\"wall_us\":1,\"steady_us\":1";

  // Wrong schema version (v2 added spans; v3 does not exist yet).
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":3,\"kind\":\"rejoin_start\"," + envelope + "}", 1, &obj,
      &err));
  EXPECT_NE(err.find("unsupported schema version"), std::string::npos);

  // Both released versions validate.
  EXPECT_TRUE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"rejoin_start\"," + envelope + "}", 1, &obj,
      &err))
      << err;
  EXPECT_TRUE(validate_trace_jsonl(
      "{\"v\":2,\"kind\":\"rejoin_start\"," + envelope + "}", 1, &obj,
      &err))
      << err;

  // Unknown kind.
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"bogus\"," + envelope + "}", 1, &obj, &err));
  EXPECT_NE(err.find("unknown event kind"), std::string::npos);

  // Missing envelope field (no seq).
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"rejoin_start\",\"node\":1,\"inc\":0,"
      "\"wall_us\":1,\"steady_us\":1}",
      1, &obj, &err));
  EXPECT_NE(err.find("\"seq\""), std::string::npos);

  // Missing kind-required field: decide without latency_us.
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"decide\"," + envelope +
          ",\"proposal\":1,\"round\":1,\"refinements\":0}",
      1, &obj, &err));
  EXPECT_NE(err.find("latency_us"), std::string::npos);

  // Mistyped required field: node_start's protocol must be a string.
  EXPECT_FALSE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"node_start\"," + envelope +
          ",\"protocol\":3,\"n\":4,\"f\":1}",
      1, &obj, &err));
  EXPECT_NE(err.find("wrong type"), std::string::npos);

  // Extra fields are allowed (forward compatibility).
  EXPECT_TRUE(validate_trace_jsonl(
      "{\"v\":1,\"kind\":\"rejoin_start\"," + envelope +
          ",\"future_field\":\"ok\"}",
      1, &obj, &err))
      << err;
}

TEST(FlatJsonTest, ParsesWhitespaceAndEmptyObjects) {
  FlatJson obj;
  std::string err;
  EXPECT_TRUE(parse_flat_json("{}", &obj, &err)) << err;
  EXPECT_TRUE(obj.empty());
  EXPECT_TRUE(
      parse_flat_json("  { \"a\" : 1 , \"b\" : \"x y\" }  ", &obj, &err))
      << err;
  EXPECT_EQ(obj.at("a").u64, 1u);
  EXPECT_FALSE(obj.at("a").is_str);
  EXPECT_EQ(obj.at("b").str, "x y");
  EXPECT_TRUE(obj.at("b").is_str);
}

TEST(FlatJsonTest, RejectsNestingNegativesAndTrailingJunk) {
  FlatJson obj;
  std::string err;
  EXPECT_FALSE(parse_flat_json("{\"a\":{\"b\":1}}", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":[1]}", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":-1}", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":1} tail", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":\"unterminated}", &obj, &err));
  EXPECT_FALSE(parse_flat_json("not json", &obj, &err));
  EXPECT_FALSE(parse_flat_json("{\"a\":1", &obj, &err));
}

}  // namespace
}  // namespace bgla::obs
