// Tracer tests: format, layer filtering, and line caps.
#include <gtest/gtest.h>

#include <sstream>

#include "la/wts.h"
#include "lattice/set_elem.h"
#include "sim/trace.h"

namespace bgla {
namespace {

using lattice::Item;
using lattice::make_set;

std::unique_ptr<la::WtsProcess> make_proc(sim::Network& net, ProcessId id,
                                          const la::LaConfig& cfg) {
  return std::make_unique<la::WtsProcess>(
      net, id, cfg, make_set({Item{id, 100 + id, 0}}));
}

TEST(Trace, RendersAgreementTraffic) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 1, 4);
  std::ostringstream out;
  sim::Tracer tracer(net, {.include_broadcast = false,
                           .max_lines = 100000,
                           .out = &out});
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(make_proc(net, id, cfg));
  }
  net.run();
  const std::string text = out.str();
  EXPECT_NE(text.find("ACK_REQ"), std::string::npos);
  EXPECT_NE(text.find("ACK("), std::string::npos);
  EXPECT_EQ(text.find("RB_ECHO"), std::string::npos);  // filtered
  EXPECT_NE(text.find("p0 -> p1"), std::string::npos);
  EXPECT_GT(tracer.lines(), 0u);
}

TEST(Trace, BroadcastLayerOptIn) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 1, 4);
  std::ostringstream out;
  sim::Tracer tracer(net, {.include_broadcast = true,
                           .max_lines = 100000,
                           .out = &out});
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(make_proc(net, id, cfg));
  }
  net.run();
  const std::string text = out.str();
  EXPECT_NE(text.find("RB_SEND"), std::string::npos);
  EXPECT_NE(text.find("RB_ECHO"), std::string::npos);
  EXPECT_NE(text.find("RB_READY"), std::string::npos);
}

TEST(Trace, LineCapSuppresses) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 1, 4);
  std::ostringstream out;
  sim::Tracer tracer(net, {.include_broadcast = true,
                           .max_lines = 5,
                           .out = &out});
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(make_proc(net, id, cfg));
  }
  net.run();
  EXPECT_EQ(tracer.lines(), 5u);
  EXPECT_GT(tracer.suppressed(), 0u);
  // Exactly five lines of output.
  std::size_t newlines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 5u);
}

}  // namespace
}  // namespace bgla
