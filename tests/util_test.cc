// Unit tests: byte helpers, canonical codec, deterministic RNG, checks.
#include <gtest/gtest.h>

#include <limits>

#include "util/bytes.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/rng.h"

namespace bgla {
namespace {

TEST(Bytes, HexRoundtrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001abcdefff");
  EXPECT_EQ(from_hex("0001abcdefff"), data);
  EXPECT_EQ(from_hex("0001ABCDEFFF"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), CheckError);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), CheckError);
}

TEST(Bytes, BytesOfString) {
  const Bytes b = bytes_of("hi");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 'h');
  EXPECT_EQ(b[1], 'i');
}

TEST(Codec, VarintRoundtripEdges) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 300,
                                 16383,
                                 16384,
                                 0xffffffffull,
                                 0x100000000ull,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    Encoder enc;
    enc.put_varint(v);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_varint(), v) << v;
    EXPECT_TRUE(dec.done());
  }
}

TEST(Codec, VarintIsMinimalLength) {
  Encoder enc;
  enc.put_varint(127);
  EXPECT_EQ(enc.bytes().size(), 1u);
  Encoder enc2;
  enc2.put_varint(128);
  EXPECT_EQ(enc2.bytes().size(), 2u);
}

TEST(Codec, MixedRoundtrip) {
  Encoder enc;
  enc.put_u8(0x7e);
  enc.put_u32(123456);
  enc.put_u64(0xdeadbeefcafef00dull);
  enc.put_bool(true);
  enc.put_string("hello");
  enc.put_bytes(Bytes{1, 2, 3});

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0x7e);
  EXPECT_EQ(dec.get_u32(), 123456u);
  EXPECT_EQ(dec.get_u64(), 0xdeadbeefcafef00dull);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(dec.done());
}

TEST(Codec, UnderrunThrows) {
  Encoder enc;
  enc.put_u8(1);
  Decoder dec(enc.bytes());
  dec.get_u8();
  EXPECT_THROW(dec.get_u8(), CheckError);
}

TEST(Codec, ByteStringLengthOverrunThrows) {
  // A length prefix larger than the remaining buffer must not read OOB.
  Bytes evil;
  {
    Encoder enc;
    enc.put_varint(1000);
    evil = enc.take();
  }
  evil.push_back(0x42);  // only one byte of payload
  Decoder dec(evil);
  EXPECT_THROW(dec.get_bytes(), CheckError);
}

TEST(Codec, U32OverflowDetected) {
  Encoder enc;
  enc.put_varint(0x1ffffffffull);
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.get_u32(), CheckError);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);  // crude mean sanity
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Check, ThrowsWithMessage) {
  try {
    BGLA_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  BGLA_CHECK(true);
  BGLA_CHECK_MSG(2 + 2 == 4, "math broke");
}

}  // namespace
}  // namespace bgla
