// Wire-format round trips for every message type in the registry, through
// the same net::decode_message the socket transport uses. The contract
// under test (net/wire.h):
//   - decode(encoded()) reconstructs a message whose canonical encoding is
//     byte-identical to the input (digests, and therefore signatures,
//     survive the wire), and
//   - hostile bytes — truncations, bit flips, garbage — never crash the
//     decoder: it returns nullptr, or a re-canonicalized message (sets
//     re-sorted, etc.) whose own encoding is a decode/encode fixpoint;
//     any divergence from the sender's bytes then shows up as a digest or
//     signature mismatch at the protocol layer.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bcast/bracha.h"
#include "bcast/cert_rb.h"
#include "la/gsbs_msgs.h"
#include "la/messages.h"
#include "la/sbs_msgs.h"
#include "la/signed_value.h"
#include "lattice/maxint_elem.h"
#include "lattice/set_elem.h"
#include "lattice/vclock_elem.h"
#include "net/delta_codec.h"
#include "net/shard_envelope.h"
#include "net/wire.h"
#include "rsm/msgs.h"
#include "sim/message.h"

namespace bgla {
namespace {

using la::Elem;
using lattice::Item;
using lattice::make_maxint;
using lattice::make_set;
using lattice::make_vclock;

/// One representative instance of every wire message type, with realistic
/// nested content (signatures, proofs, certificates, nested broadcasts) so
/// the full encoding surface is exercised.
std::vector<sim::MessagePtr> sample_messages() {
  const crypto::SignatureAuthority auth(8, 7);
  const crypto::Signer s1 = auth.signer_for(1);
  const crypto::Signer s2 = auth.signer_for(2);
  const crypto::Signer s3 = auth.signer_for(3);

  const Elem set_a = make_set({Item{1, 101, 0}, Item{2, 102, 5}});
  const Elem set_b = make_set({Item{3, 303, 1}});
  const Elem maxint = make_maxint(0xdeadbeefULL);
  const Elem vclock = make_vclock({{0, 4}, {5, 19}});
  const Elem bottom;

  std::vector<sim::MessagePtr> all;

  // Bracha RB (1-3) — inner payloads are themselves wire messages.
  const bcast::RbKey rbk{2, 7};
  all.push_back(std::make_shared<bcast::RbSendMsg>(
      rbk, std::make_shared<la::DisclosureMsg>(set_a)));
  all.push_back(std::make_shared<bcast::RbEchoMsg>(
      rbk, std::make_shared<la::DisclosureMsg>(maxint)));
  all.push_back(std::make_shared<bcast::RbReadyMsg>(
      rbk, std::make_shared<la::DisclosureMsg>(bottom)));

  // Certificate RB (4-6).
  const bcast::CrbKey crbk{1, 3};
  all.push_back(std::make_shared<bcast::CrbSendMsg>(
      crbk, std::make_shared<la::DisclosureMsg>(set_b)));
  all.push_back(std::make_shared<bcast::CrbEchoMsg>(
      crbk, set_b.digest(),
      s2.sign(bcast::crb_echo_payload(crbk, set_b.digest()))));
  all.push_back(std::make_shared<bcast::CrbFinalMsg>(
      crbk, std::make_shared<la::DisclosureMsg>(set_b),
      std::vector<crypto::Signature>{
          s2.sign(bcast::crb_echo_payload(crbk, set_b.digest())),
          s3.sign(bcast::crb_echo_payload(crbk, set_b.digest()))}));

  // WTS (10-13).
  all.push_back(std::make_shared<la::DisclosureMsg>(vclock));
  all.push_back(std::make_shared<la::AckReqMsg>(set_a, 3));
  all.push_back(std::make_shared<la::AckMsg>(set_a, 3));
  all.push_back(std::make_shared<la::NackMsg>(set_b, 4));

  // GWTS + submission path (20-25).
  all.push_back(std::make_shared<la::GDisclosureMsg>(set_a, 2));
  all.push_back(std::make_shared<la::GAckReqMsg>(set_a, 5, 2));
  all.push_back(std::make_shared<la::GAckMsg>(set_a, 1, 3, 5, 2));
  all.push_back(std::make_shared<la::GNackMsg>(set_b, 5, 2));
  all.push_back(std::make_shared<la::SubmitMsg>(set_b));
  all.push_back(std::make_shared<la::SubmitNackMsg>(set_b,
                                                    /*retry_after=*/17, 2));

  // Faleiro crash-stop baseline (30-32).
  all.push_back(std::make_shared<la::FAckReqMsg>(set_a, 9));
  all.push_back(std::make_shared<la::FAckMsg>(set_a, 9));
  all.push_back(std::make_shared<la::FNackMsg>(set_b, 10));

  // SbS (40-45): signed values, conflict pairs, proof-carrying sets.
  const la::SignedValue sv1 = la::make_signed_value(s1, set_a);
  const la::SignedValue sv2 = la::make_signed_value(s2, set_b);
  const la::SignedValue sv2b = la::make_signed_value(s2, vclock);
  la::SignedValueSet svset;
  svset.insert(sv1);
  svset.insert(sv2);
  const std::vector<la::ConflictPair> conflicts = {{sv2, sv2b}};
  auto safe_ack = std::make_shared<la::SSafeAckMsg>(
      svset, conflicts, 3,
      s3.sign(la::SSafeAckMsg::signed_payload(svset, conflicts, 3)));
  la::SafeValueSet safeset;
  safeset.insert(la::SafeValue{sv1, {safe_ack}});
  safeset.insert(la::SafeValue{sv2, {safe_ack}});
  all.push_back(std::make_shared<la::SInitMsg>(sv1));
  all.push_back(std::make_shared<la::SSafeReqMsg>(svset));
  all.push_back(safe_ack);
  all.push_back(std::make_shared<la::SAckReqMsg>(safeset, 6));
  all.push_back(std::make_shared<la::SAckMsg>(safeset, 6));
  all.push_back(std::make_shared<la::SNackMsg>(safeset, 7));

  // GSbS (50-56): round-bound batches, signed acks, DECIDED certificate.
  const la::SignedBatch sb1 = la::make_signed_batch(s1, set_a, 4);
  const la::SignedBatch sb2 = la::make_signed_batch(s2, set_b, 4);
  const la::SignedBatch sb2b = la::make_signed_batch(s2, vclock, 4);
  la::SignedBatchSet sbset;
  sbset.insert(sb1);
  sbset.insert(sb2);
  const std::vector<std::pair<la::SignedBatch, la::SignedBatch>>
      bconflicts = {{sb2, sb2b}};
  auto gsafe_ack = std::make_shared<la::GSSafeAckMsg>(
      sbset, bconflicts, 3, 4,
      s3.sign(la::GSSafeAckMsg::signed_payload(sbset, bconflicts, 3, 4)));
  la::SafeBatchSet sfbset;
  sfbset.insert(la::SafeBatch{sb1, {gsafe_ack}});
  sfbset.insert(la::SafeBatch{sb2, {gsafe_ack}});
  const crypto::Digest fp = sfbset.fingerprint();
  auto gack2 = std::make_shared<la::GSAckMsg>(
      fp, 1, 8, 4, s2.sign(la::GSAckMsg::signed_payload(fp, 1, 8, 4)));
  auto gack3 = std::make_shared<la::GSAckMsg>(
      fp, 1, 8, 4, s3.sign(la::GSAckMsg::signed_payload(fp, 1, 8, 4)));
  all.push_back(std::make_shared<la::GSInitMsg>(sb1));
  all.push_back(std::make_shared<la::GSSafeReqMsg>(sbset, 4));
  all.push_back(gsafe_ack);
  all.push_back(std::make_shared<la::GSAckReqMsg>(sfbset, 8, 4));
  all.push_back(gack2);
  all.push_back(std::make_shared<la::GSNackMsg>(sfbset, 8, 4));
  all.push_back(std::make_shared<la::GSDecidedMsg>(
      sfbset, 1, 8, 4,
      std::vector<std::shared_ptr<const la::GSAckMsg>>{gack2, gack3}));

  // RSM (60-64).
  all.push_back(std::make_shared<rsm::UpdateMsg>(Item{6, 11, 2}));
  all.push_back(std::make_shared<rsm::DecideMsg>(set_a, 2));
  all.push_back(std::make_shared<rsm::ConfReqMsg>(set_a));
  all.push_back(std::make_shared<rsm::ConfRepMsg>(set_a, 2));
  all.push_back(std::make_shared<rsm::BatchUpdateMsg>(
      std::vector<Item>{Item{6, 11, 2}, Item{7, 12, 1}}));

  // Shard envelope (80) — wraps arbitrary inner messages; sample both a
  // replica-peer protocol message and an RB-nested one so the recursive
  // decode path is exercised through the envelope.
  all.push_back(std::make_shared<net::ShardEnvelopeMsg>(
      3, std::make_shared<la::GAckReqMsg>(set_a, 5, 2)));
  all.push_back(std::make_shared<net::ShardEnvelopeMsg>(
      0, std::make_shared<bcast::RbSendMsg>(
             rbk, std::make_shared<la::GDisclosureMsg>(set_b, 1))));

  // Rejoin catch-up (70-71).
  all.push_back(std::make_shared<la::CatchupReqMsg>(3));
  // Empty cert = the non-GSbS reply; a non-empty cert must be a valid
  // GSDecidedMsg blob or the decoder rejects the whole frame.
  all.push_back(std::make_shared<la::CatchupRepMsg>(3, 5, set_a, set_b,
                                                    set_a, Bytes{}));

  // Delta wire protocol (90-91). The wrapper payload is opaque at this
  // layer (net/delta_codec.cc owns its meaning), so any byte string must
  // survive the frame round trip.
  all.push_back(std::make_shared<la::DeltaWrapMsg>(
      /*epoch=*/2, /*seq=*/17, /*inner_type=*/11,
      Bytes{0x01, 0x05, 0x00, 0xfe, 0x20}));
  all.push_back(std::make_shared<la::DeltaWrapMsg>(
      /*epoch=*/1, /*seq=*/1, /*inner_type=*/41, Bytes{}));
  all.push_back(std::make_shared<la::DeltaResetMsg>(/*epoch=*/9));

  return all;
}

/// A decoded message must be a decode/encode fixpoint: its canonical
/// re-encoding decodes back to the identical byte string. (Hostile input
/// may legitimately parse after re-canonicalization — e.g. a bit flip
/// that reorders set items — but the canonical form must be stable.)
void expect_canonical_fixpoint(const sim::MessagePtr& d,
                               const std::string& context) {
  const Bytes& canon = d->encoded();
  const sim::MessagePtr d2 = net::decode_message(canon);
  ASSERT_NE(d2, nullptr) << context;
  EXPECT_EQ(d2->encoded(), canon) << context;
}

TEST(WireCodec, RoundTripsEveryMessageType) {
  const auto msgs = sample_messages();
  std::set<std::uint32_t> covered;
  for (const auto& msg : msgs) {
    covered.insert(msg->type_id());
    const Bytes& bytes = msg->encoded();
    const sim::MessagePtr decoded = net::decode_message(bytes);
    ASSERT_NE(decoded, nullptr) << msg->to_string();
    EXPECT_EQ(decoded->type_id(), msg->type_id());
    EXPECT_EQ(decoded->encoded(), bytes)
        << "non-canonical re-encoding of " << msg->to_string();
    EXPECT_EQ(decoded->to_string(), msg->to_string());
  }
  // Every registered wire type must be in the sample, so a new message
  // type without decoder coverage fails here, not in production.
  const std::set<std::uint32_t> registry = {
      1,  2,  3,  4,  5,  6,           // Bracha + certificate RB
      10, 11, 12, 13,                  // WTS
      20, 21, 22, 23, 24, 25,          // GWTS + submit/backpressure
      30, 31, 32,                      // Faleiro baseline
      40, 41, 42, 43, 44, 45,          // SbS
      50, 51, 52, 53, 54, 55, 56,      // GSbS
      60, 61, 62, 63, 64,              // RSM (64 = batched updates)
      70, 71,                          // rejoin catch-up
      80,                              // shard envelope
      90, 91,                          // delta wire wrapper + reset
  };
  EXPECT_EQ(covered, registry);
}

TEST(WireCodec, TruncatedFramesRejectOrStayCanonical) {
  for (const auto& msg : sample_messages()) {
    const Bytes& bytes = msg->encoded();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const Bytes prefix(bytes.begin(), bytes.begin() + len);
      const sim::MessagePtr d = net::decode_message(prefix);
      if (d != nullptr) {
        expect_canonical_fixpoint(
            d, msg->to_string() + " truncated to " + std::to_string(len));
      }
    }
  }
}

TEST(WireCodec, CorruptedFramesRejectOrStayCanonical) {
  for (const auto& msg : sample_messages()) {
    const Bytes& bytes = msg->encoded();
    for (std::size_t pos = 0; pos < bytes.size(); pos += 3) {
      for (std::uint8_t flip : {0x01, 0x80, 0xff}) {
        Bytes mutated = bytes;
        mutated[pos] ^= flip;
        const sim::MessagePtr d = net::decode_message(mutated);
        if (d != nullptr) {
          expect_canonical_fixpoint(
              d, msg->to_string() + " corrupted at " + std::to_string(pos));
        }
      }
    }
  }
}

TEST(WireCodec, GarbageBuffersNeverCrash) {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;  // deterministic xorshift stream
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int round = 0; round < 2000; ++round) {
    Bytes buf(next() % 160);
    for (auto& b : buf) b = static_cast<std::uint8_t>(next());
    const sim::MessagePtr d = net::decode_message(buf);
    if (d != nullptr) {
      expect_canonical_fixpoint(d, "garbage round " + std::to_string(round));
    }
  }
  EXPECT_EQ(net::decode_message(BytesView{}), nullptr);
}

// Deeply nested RB envelopes must hit the decoder's recursion bound, not
// the stack.
TEST(WireCodec, NestingDepthIsBounded) {
  sim::MessagePtr inner = std::make_shared<la::DisclosureMsg>(
      make_set({Item{1, 1, 1}}));
  for (int depth = 0; depth < 32; ++depth) {
    inner = std::make_shared<bcast::RbSendMsg>(bcast::RbKey{1, 0}, inner);
  }
  EXPECT_EQ(net::decode_message(inner->encoded()), nullptr);
}

// The shard envelope nests like RB does, so a tower of envelopes — which
// no correct Router ever produces — must also die at the recursion bound.
TEST(WireCodec, NestedShardEnvelopesAreBounded) {
  sim::MessagePtr inner =
      std::make_shared<la::SubmitMsg>(make_set({Item{1, 1, 1}}));
  for (std::uint32_t depth = 0; depth < 32; ++depth) {
    inner = std::make_shared<net::ShardEnvelopeMsg>(depth % 4, inner);
  }
  EXPECT_EQ(net::decode_message(inner->encoded()), nullptr);
}

// --------------------------------------------------- trace-context tail --
// The causal-span trace context (obs/trace_ctx.h) rides allowlisted
// message types as an optional `varint(trace)||varint(span)` tail inside
// the canonical encoding. The allowlist in net/wire.cc must round-trip
// the tail; every other type must keep rejecting trailing bytes so a
// hostile tail can never poison a signed blob or a persisted proof.

const std::set<std::uint32_t>& ctx_allowed_types() {
  static const std::set<std::uint32_t> kAllowed = {
      11, 12, 13,          // WTS ack-req/ack/nack
      21, 23, 24, 25,      // GWTS ack-req/nack + submit/backpressure
      30, 31, 32,          // Faleiro ack-req/ack/nack
      43, 44, 45,          // SbS ack-req/ack/nack
      53,                  // GSbS ack-req
      60, 61, 64,          // RSM update/decide/batch-update
      80,                  // shard envelope
      90,                  // delta wrapper (carries the inner msg's ctx)
  };
  return kAllowed;
}

TEST(WireCodec, TraceContextTailRoundTripsOnAllowlistedTypes) {
  std::set<std::uint32_t> covered;
  for (const auto& msg : sample_messages()) {
    if (ctx_allowed_types().count(msg->type_id()) == 0) continue;
    covered.insert(msg->type_id());
    // Stamp before the first encoded() call: the tail is part of the
    // memoized canonical bytes.
    msg->set_trace_ctx({/*trace_id=*/0x123456789abcull, /*span_id=*/42});
    const Bytes& bytes = msg->encoded();
    const sim::MessagePtr d = net::decode_message(bytes);
    ASSERT_NE(d, nullptr) << msg->to_string();
    EXPECT_EQ(d->trace_ctx().trace_id, 0x123456789abcull)
        << msg->to_string();
    EXPECT_EQ(d->trace_ctx().span_id, 42u) << msg->to_string();
    EXPECT_EQ(d->encoded(), bytes)
        << "tail lost in re-encode of " << msg->to_string();
  }
  // Every allowlisted type must appear in the sample set, so the tail
  // coverage cannot silently rot as types are added.
  EXPECT_EQ(covered, ctx_allowed_types());
}

TEST(WireCodec, UnstampedMessagesCarryNoTailAndDecodeContextFree) {
  for (const auto& msg : sample_messages()) {
    const sim::MessagePtr d = net::decode_message(msg->encoded());
    ASSERT_NE(d, nullptr) << msg->to_string();
    EXPECT_FALSE(d->trace_ctx().valid()) << msg->to_string();
  }
}

TEST(WireCodec, ZeroTraceIdTailRejects) {
  for (const auto& msg : sample_messages()) {
    if (ctx_allowed_types().count(msg->type_id()) == 0) continue;
    Bytes bytes = msg->encoded();
    bytes.push_back(0x00);  // varint trace_id = 0 (reserved for "absent")
    bytes.push_back(0x05);  // varint span_id = 5
    EXPECT_EQ(net::decode_message(bytes), nullptr) << msg->to_string();
  }
}

TEST(WireCodec, NonAllowlistedTypesRejectTrailingContextBytes) {
  for (const auto& msg : sample_messages()) {
    if (ctx_allowed_types().count(msg->type_id()) != 0) continue;
    Bytes bytes = msg->encoded();
    bytes.push_back(0x07);  // would-be varint trace_id
    bytes.push_back(0x09);  // would-be varint span_id
    EXPECT_EQ(net::decode_message(bytes), nullptr)
        << "type " << msg->type_id() << " accepted a trailing tail: "
        << msg->to_string();
  }
}

// -------------------------------------------------------- delta codec --
// net/delta_codec.h payload-level contract, independent of the transport
// decorator: encode → decode is byte-identity on a live chain, a delta
// decoded against the wrong baseline is rejected loudly (never silently
// misapplied), and truncated/corrupted payloads throw instead of crash.

/// Ships every sample message (in order) through one sender chain set and
/// one receiver chain set, asserting byte-identical reconstruction of the
/// eligible ones. Returns (inner_type, payload) of every wrapped message.
std::vector<std::pair<std::uint32_t, Bytes>> ship_all(
    const std::vector<sim::MessagePtr>& msgs) {
  std::map<std::uint64_t, net::SendChain> send;
  std::map<std::uint64_t, net::RecvChain> recv;
  std::vector<std::pair<std::uint32_t, Bytes>> wrapped;
  for (const auto& msg : msgs) {
    if (!net::delta_eligible(msg->type_id())) continue;
    std::uint64_t stream = 0, seq = 0;
    Bytes payload;
    if (!net::encode_delta(*msg, send, &stream, &seq, &payload)) continue;
    std::uint64_t peeked = 0;
    EXPECT_TRUE(net::peek_stream(msg->type_id(), BytesView(payload), &peeked));
    EXPECT_EQ(peeked, stream);
    const Bytes rebuilt =
        net::decode_delta(msg->type_id(), BytesView(payload), recv[stream]);
    Encoder framed;
    framed.put_u32(msg->type_id());
    framed.put_raw(BytesView(rebuilt));
    EXPECT_EQ(framed.bytes(), msg->encoded())
        << "reconstruction diverged for " << msg->to_string();
    wrapped.emplace_back(msg->type_id(), payload);
  }
  return wrapped;
}

TEST(DeltaCodec, EveryEligibleSampleReconstructsByteIdentically) {
  const auto wrapped = ship_all(sample_messages());
  // The sample set covers the eligible surface broadly; if this count
  // drops, shapes silently fell out of coverage.
  EXPECT_GE(wrapped.size(), 20u);
}

TEST(DeltaCodec, RepeatedTrafficActuallyDeltas) {
  // Growing proposals on one stream: later payloads must be smaller than
  // the full inner encodings they reconstruct.
  std::map<std::uint64_t, net::SendChain> send;
  std::map<std::uint64_t, net::RecvChain> recv;
  std::set<Item> items;
  for (std::uint64_t k = 1; k <= 6; ++k) {
    for (std::uint64_t j = 0; j < 8; ++j) items.insert(Item{1, k * 16 + j, 0});
    const auto msg = std::make_shared<la::AckReqMsg>(make_set(items), k);
    std::uint64_t stream = 0, seq = 0;
    Bytes payload;
    ASSERT_TRUE(net::encode_delta(*msg, send, &stream, &seq, &payload));
    ASSERT_EQ(seq, k);
    const Bytes rebuilt =
        net::decode_delta(msg->type_id(), BytesView(payload), recv[stream]);
    if (k > 1) {
      EXPECT_LT(payload.size(), msg->encoded().size())
          << "step " << k << " did not shrink";
    }
  }
}

TEST(DeltaCodec, DeltaAgainstWrongBaselineRejects) {
  std::map<std::uint64_t, net::SendChain> send;
  net::RecvChain synced, fresh;
  const auto m1 = std::make_shared<la::AckReqMsg>(
      make_set({Item{1, 1, 0}, Item{1, 2, 0}}), 1);
  const auto m2 = std::make_shared<la::AckReqMsg>(
      make_set({Item{1, 1, 0}, Item{1, 2, 0}, Item{1, 3, 0}}), 2);
  std::uint64_t stream = 0, seq = 0;
  Bytes p1, p2;
  ASSERT_TRUE(net::encode_delta(*m1, send, &stream, &seq, &p1));
  ASSERT_TRUE(net::encode_delta(*m2, send, &stream, &seq, &p2));
  net::decode_delta(m1->type_id(), BytesView(p1), synced);
  // Synced chain applies the delta; a chain that never saw m1 must
  // refuse it (expected-weight check), not fabricate state.
  net::decode_delta(m2->type_id(), BytesView(p2), synced);
  EXPECT_THROW(net::decode_delta(m2->type_id(), BytesView(p2), fresh),
               CheckError);
}

TEST(DeltaCodec, TruncatedAndCorruptedPayloadsThrowNotCrash) {
  for (const auto& [inner_type, payload] : ship_all(sample_messages())) {
    for (std::size_t cut = 0; cut < payload.size();
         cut += 1 + payload.size() / 24) {
      const Bytes trunc(payload.begin(),
                        payload.begin() + static_cast<std::ptrdiff_t>(cut));
      net::RecvChain chain;
      try {
        net::decode_delta(inner_type, BytesView(trunc), chain);
      } catch (const CheckError&) {
      }
    }
    for (std::size_t i = 0; i < payload.size();
         i += 1 + payload.size() / 24) {
      Bytes flipped = payload;
      flipped[i] ^= 0x40;
      net::RecvChain chain;
      try {
        const Bytes rebuilt =
            net::decode_delta(inner_type, BytesView(flipped), chain);
        // If the flip still parses, the rebuilt inner frame must either
        // decode cleanly or be rejected — never crash downstream.
        Encoder framed;
        framed.put_u32(inner_type);
        framed.put_raw(BytesView(rebuilt));
        const sim::MessagePtr d = net::decode_message(framed.bytes());
        if (d != nullptr) expect_canonical_fixpoint(d, "delta-corrupt");
      } catch (const CheckError&) {
      }
    }
  }
}

TEST(DeltaCodec, GarbagePayloadsThrowNotCrash) {
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  const auto next = [&x] {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    return static_cast<std::uint8_t>(x);
  };
  for (const std::uint32_t inner_type : {10u, 11u, 21u, 41u, 43u, 51u, 53u,
                                         1u, 6u, 71u, 80u}) {
    for (int round = 0; round < 200; ++round) {
      Bytes junk(static_cast<std::size_t>(next()) % 64);
      for (auto& b : junk) b = next();
      net::RecvChain chain;
      try {
        net::decode_delta(inner_type, BytesView(junk), chain);
      } catch (const CheckError&) {
      }
      std::uint64_t stream = 0;
      try {
        net::peek_stream(inner_type, BytesView(junk), &stream);
      } catch (const CheckError&) {
      }
    }
  }
}

}  // namespace
}  // namespace bgla
