// WTS (Algorithms 1-2) tests: the full §3.1 spec across system sizes,
// schedules and adversaries; the Theorem 3 delay bound; the Lemma 3
// refinement bound; lattice-generality (max-int lattice); and the defense
// matched to every Byzantine strategy.
#include <gtest/gtest.h>

#include "byz/strategies.h"
#include "harness/scenario.h"
#include "la/wts.h"
#include "lattice/chain.h"
#include "lattice/maxint_elem.h"
#include "lattice/set_elem.h"

namespace bgla {
namespace {

using harness::Adversary;
using harness::Sched;
using harness::WtsScenario;
using lattice::Item;
using lattice::make_set;

struct SweepParam {
  std::uint32_t n;
  std::uint32_t f;
  Adversary adversary;
  Sched sched;
  std::uint64_t seed;
};

class WtsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(WtsSweep, SpecHoldsAndBoundsRespected) {
  const SweepParam p = GetParam();
  WtsScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_count = p.f;
  sc.adversary = p.adversary;
  sc.sched = p.sched;
  sc.seed = p.seed;
  const auto rep = harness::run_wts(sc);

  EXPECT_TRUE(rep.completed) << "run did not complete";
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  // Theorem 3 charges the reliable broadcast 3 delays; Bracha's READY
  // amplification can causally stretch an RB delivery to 3+f hops under
  // adversarial schedules, so the implementable end-to-end bound is 3f+5
  // (and exactly 2f+5 under the lock-step schedule — asserted below).
  EXPECT_LE(rep.max_depth, 3 * p.f + 5);
  if (p.sched == Sched::kFixed) {
    EXPECT_LE(rep.max_depth, 2 * p.f + 5);
  }
  // Lemma 3: ≤ f refinements.
  EXPECT_LE(rep.max_refinements, p.f);
}

INSTANTIATE_TEST_SUITE_P(
    NoFault, WtsSweep,
    ::testing::Values(
        SweepParam{4, 1, Adversary::kNone, Sched::kUniform, 1},
        SweepParam{4, 1, Adversary::kNone, Sched::kFixed, 2},
        SweepParam{7, 2, Adversary::kNone, Sched::kUniform, 3},
        SweepParam{7, 2, Adversary::kNone, Sched::kJitter, 4},
        SweepParam{10, 3, Adversary::kNone, Sched::kUniform, 5},
        SweepParam{10, 3, Adversary::kNone, Sched::kTargeted, 6},
        SweepParam{13, 4, Adversary::kNone, Sched::kUniform, 7},
        SweepParam{16, 5, Adversary::kNone, Sched::kJitter, 8},
        SweepParam{5, 1, Adversary::kNone, Sched::kUniform, 9},
        SweepParam{6, 1, Adversary::kNone, Sched::kTargeted, 10}));

INSTANTIATE_TEST_SUITE_P(
    Adversarial, WtsSweep,
    ::testing::Values(
        SweepParam{4, 1, Adversary::kMute, Sched::kUniform, 11},
        SweepParam{4, 1, Adversary::kEquivocator, Sched::kUniform, 12},
        SweepParam{4, 1, Adversary::kEquivocator, Sched::kJitter, 13},
        SweepParam{4, 1, Adversary::kInvalidValue, Sched::kUniform, 14},
        SweepParam{4, 1, Adversary::kStaleNacker, Sched::kUniform, 15},
        SweepParam{4, 1, Adversary::kLyingAcker, Sched::kUniform, 16},
        SweepParam{4, 1, Adversary::kFlooder, Sched::kUniform, 17},
        SweepParam{7, 2, Adversary::kMute, Sched::kTargeted, 18},
        SweepParam{7, 2, Adversary::kEquivocator, Sched::kUniform, 19},
        SweepParam{7, 2, Adversary::kStaleNacker, Sched::kJitter, 20},
        SweepParam{7, 2, Adversary::kInvalidValue, Sched::kTargeted, 21},
        SweepParam{10, 3, Adversary::kEquivocator, Sched::kUniform, 22},
        SweepParam{10, 3, Adversary::kStaleNacker, Sched::kUniform, 23},
        SweepParam{10, 3, Adversary::kFlooder, Sched::kJitter, 24},
        SweepParam{13, 4, Adversary::kEquivocator, Sched::kJitter, 25},
        SweepParam{13, 4, Adversary::kStaleNacker, Sched::kTargeted, 26}));

class WtsLockstep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WtsLockstep, PaperDelayBoundHoldsUnderLockstep) {
  // Under latency-1 links every correct process delivers each reliable
  // broadcast in exactly 3 hops, matching the paper's accounting, so
  // Theorem 3's 2f+5 must hold with the original constant.
  const std::uint32_t f = GetParam();
  WtsScenario sc;
  sc.n = 3 * f + 1;
  sc.f = f;
  sc.byz_count = f;
  sc.adversary = f == 0 ? Adversary::kNone : Adversary::kStaleNacker;
  sc.sched = Sched::kFixed;
  sc.seed = 21 + f;
  const auto rep = harness::run_wts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_LE(rep.max_depth, 2 * f + 5);
}

INSTANTIATE_TEST_SUITE_P(Resilience, WtsLockstep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class WtsSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WtsSeedSweep, EquivocatorNeverBreaksSpec) {
  WtsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = GetParam();
  const auto rep = harness::run_wts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST_P(WtsSeedSweep, StaleNackerForcesAtMostFRefinements) {
  WtsScenario sc;
  sc.n = 10;
  sc.f = 3;
  sc.byz_count = 3;
  sc.adversary = Adversary::kStaleNacker;
  sc.seed = GetParam();
  const auto rep = harness::run_wts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_LE(rep.max_refinements, 3u);
  EXPECT_LE(rep.max_depth, 3u * 3u + 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WtsSeedSweep,
                         ::testing::Range<std::uint64_t>(100, 112));

TEST(Wts, DeterministicReplay) {
  WtsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = 42;
  const auto a = harness::run_wts(sc);
  const auto b = harness::run_wts(sc);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(a.total_msgs, b.total_msgs);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(Wts, InvalidValueNeverDecided) {
  // The inadmissible value (b = 9999) must never appear in any decision.
  WtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kInvalidValue;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sc.seed = seed;
    const auto rep = harness::run_wts(sc);
    EXPECT_TRUE(rep.completed);
    EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  }
}

TEST(Wts, RejectsInsufficientResilience) {
  la::LaConfig cfg;
  cfg.n = 3;
  cfg.f = 1;  // 3 < 3f+1 — Theorem 1 bound
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Wts, QuorumArithmetic) {
  for (std::uint32_t f = 0; f <= 8; ++f) {
    la::LaConfig cfg;
    cfg.n = 3 * f + 1;
    cfg.f = f;
    // Byzantine quorum must be achievable by correct processes alone and
    // any two quorums must intersect in a correct process.
    EXPECT_LE(cfg.quorum(), cfg.n - cfg.f);
    EXPECT_GT(2 * cfg.quorum(), cfg.n + cfg.f);
  }
}

TEST(Wts, RunsOnMaxIntLattice) {
  // Lattice generality: the identical protocol code on a totally ordered
  // non-set lattice.
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.expected_kind = "maxint";
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), 5, 4);
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::WtsProcess>(
        net, id, cfg, lattice::make_maxint(10 * (id + 1))));
  }
  const auto rr = net.run();
  EXPECT_TRUE(rr.quiescent);
  std::vector<lattice::Elem> decisions;
  for (const auto& p : procs) {
    ASSERT_TRUE(p->decided());
    decisions.push_back(p->decision().value);
    // Inclusivity on the max lattice: decision ≥ own proposal.
    EXPECT_GE(lattice::maxint_value(p->decision().value),
              10 * (p->id() + 1));
    // Non-triviality: bounded by the max of all proposals.
    EXPECT_LE(lattice::maxint_value(p->decision().value), 40u);
  }
  EXPECT_TRUE(lattice::is_chain(decisions));
}

TEST(Wts, PureAcceptorParticipatesWithoutProposal) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), 9, 4);
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  // Process 3 proposes nothing (⊥) — it helps as an acceptor and
  // discloses nothing; the other three still decide (threshold n−f = 3).
  for (ProcessId id = 0; id < 4; ++id) {
    lattice::Elem proposal;
    if (id < 3) proposal = make_set({Item{id, 100 + id, 0}});
    procs.push_back(
        std::make_unique<la::WtsProcess>(net, id, cfg, proposal));
  }
  const auto rr = net.run();
  EXPECT_TRUE(rr.quiescent);
  for (ProcessId id = 0; id < 3; ++id) {
    EXPECT_TRUE(procs[id]->decided()) << "p" << id;
  }
}

TEST(Wts, DecideHookFiresExactlyOnce) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 2, 4);
  std::vector<std::unique_ptr<la::WtsProcess>> procs;
  int fired = 0;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::WtsProcess>(
        net, id, cfg, make_set({Item{id, 1, 0}})));
    procs.back()->set_decide_hook(
        [&fired](const la::WtsProcess&) { ++fired; });
  }
  net.run();
  EXPECT_EQ(fired, 4);
}

TEST(Wts, DecisionAccessBeforeDecideThrows) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 2, 4);
  la::WtsProcess p(net, 0, cfg, make_set({Item{0, 1, 0}}));
  EXPECT_FALSE(p.decided());
  EXPECT_THROW(p.decision(), CheckError);
}

TEST(Wts, MessageComplexityQuadraticShape) {
  // T2 shape check: per-process messages grow ~n² (RB-cast dominated).
  // Fit: doubling n should multiply messages by ~4 (tolerance wide).
  auto msgs_at = [](std::uint32_t n) {
    WtsScenario sc;
    sc.n = n;
    sc.f = (n - 1) / 3;
    sc.adversary = Adversary::kNone;
    sc.seed = 3;
    return harness::run_wts(sc).max_msgs_per_correct;
  };
  const auto m8 = msgs_at(8);
  const auto m16 = msgs_at(16);
  const double ratio = static_cast<double>(m16) / static_cast<double>(m8);
  EXPECT_GT(ratio, 2.5);  // clearly superlinear
  EXPECT_LT(ratio, 8.0);  // and not cubic
}

TEST(Wts, AllProposalsAppearInSomeDecision) {
  // §5.1.1 note: when all correct proposers decide, some decision includes
  // every correct proposal (the max of the chain).
  WtsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.adversary = Adversary::kNone;
  sc.seed = 77;
  const auto rep = harness::run_wts(sc);
  ASSERT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

}  // namespace
}  // namespace bgla
