// bgla_load — closed-loop multi-client load generator for the generalized
// protocols and the RSM.
//
// Sim mode (default): one deterministic closed-loop run on the throughput
// harness (src/harness/throughput.h — the same engine bench_throughput
// sweeps), for a single (protocol, batch config, n) cell:
//   bgla_load --protocol gwts --n 7 --f 2 --batch 64 --pipeline
//             --commands 96 --window 64 --seed 1 --json load.json
// Reports commands per 1000 sim ticks, p50/p99 submit→decide latency in
// ticks, effective batch size and backpressure rejections, plus the full
// la/spec safety verdict. Byte-deterministic per seed.
//
// Live mode (--topology): joins a RUNNING bgla_node rsm-replica cluster
// over TCP as --clients closed-loop Algorithm 5/6 RSM clients (topology
// ids --client-base, --client-base+1, ...), each executing --ops update
// operations back to back:
//   for i in $(seq 0 5); do echo "$i 127.0.0.1 $((9200+i))"; done > topo.txt
//   bgla_node --topology topo.txt --id $I --protocol rsm-replica
//             --n 4 --f 1 --batch 16 --queue 64 &   # for I in 0 1 2 3
//   bgla_load --topology topo.txt --n 4 --f 1 --clients 2 --ops 32
// (the RSM needs n >= 3f+1 replicas; clients occupy topology ids n, n+1...)
// Reports wall-clock operations/sec, p50/p99 op latency in microseconds,
// and backpressure retries (replica queue-full nacks each client absorbed)
// broken down per target shard: with --shards S each op is attributed to
// the shard its command hashes to (the same FNV routing the cluster's
// Routers apply), so a hot or wedged shard is visible as its own
// retry/incomplete column rather than smeared into one aggregate.
//
// Live-mode key skew (--key-dist): update operands are drawn from
//   seq           unique per (client, op) — the old behavior (default)
//   uniform       uniformly from [0, --keys)
//   zipf:<s>      rank r with weight 1/r^s over --keys ranks (seeded)
//
// Open-loop mode (--arrival-rate R): instead of each client running its
// script back to back, a pacer injects R ops/sec (aggregate, round-robin
// across clients) REGARDLESS of completions — the canonical overload
// generator. Each client's uncompleted backlog is bounded by
// --queue-cap: an arrival that would exceed it is SHED and counted,
// never silently dropped. Completions still count SubmitNack
// backpressure retries per shard, so an overloaded cluster shows up as
// (a) shed arrivals at the generator and (b) nack-retries at the
// replicas, separately attributed.
// Every process of a deployment must share --seed (channel HMAC keys).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/json.h"
#include "harness/throughput.h"
#include "net/socket_transport.h"
#include "rsm/client.h"
#include "shard/shard_map.h"
#include "util/flags.h"

using namespace bgla;

namespace {

struct Args {
  std::string protocol = "gwts";
  std::uint32_t n = 7;
  std::uint32_t f = 0;  // 0 = derived: (n-1)/2 crash, (n-1)/3 Byzantine
  std::uint64_t seed = 42;
  std::uint32_t batch = 0;
  std::uint32_t queue = 0;
  std::uint64_t flush_age = 0;
  bool pipeline = false;
  std::uint32_t commands = 96;
  std::uint32_t window = 64;
  std::string json_path;
  // Live mode.
  std::string topology;
  std::uint32_t clients = 1;
  std::uint32_t client_base = 0;  // 0 = n (first id after the replicas)
  std::uint32_t ops = 32;
  std::uint32_t run_ms = 30000;
  std::uint32_t shards = 1;
  std::string key_dist = "seq";   // seq | uniform | zipf:<s>
  std::uint32_t keys = 64;        // key-space size for uniform/zipf
  double arrival_rate = 0.0;      // >0: open-loop ops/sec (aggregate)
  std::uint32_t queue_cap = 16;   // open-loop per-client backlog bound
};

Args parse(int argc, char** argv) {
  Args a;
  util::FlagSet flags("bgla_load");
  flags.add_string("protocol", &a.protocol,
                   "faleiro-la | gwts | gsbs (sim mode only)");
  flags.add_u32("n", &a.n, "cluster size");
  flags.add_u32("f", &a.f, "resilience (0 = max for the failure model)");
  flags.add_u64("seed", &a.seed, "sim seed / deployment key seed");
  flags.add_u32("batch", &a.batch, "values per round batch (0 = all)");
  flags.add_u32("queue", &a.queue, "ingress queue bound (0 = unbounded)");
  flags.add_u64("flush-age", &a.flush_age, "batch hold time (sim ticks)");
  flags.add_bool("pipeline", &a.pipeline, "pre-disclose next round's batch");
  flags.add_u32("commands", &a.commands, "sim: commands per process");
  flags.add_u32("window", &a.window, "sim: in-flight commands per process");
  flags.add_string("json", &a.json_path, "write the report as JSON here");
  flags.add_string("topology", &a.topology,
                   "live mode: topology file of a running rsm cluster");
  flags.add_u32("clients", &a.clients, "live: concurrent closed-loop clients");
  flags.add_u32("client-base", &a.client_base,
                "live: first client topology id (default n)");
  flags.add_u32("ops", &a.ops, "live: update operations per client");
  flags.add_u32("run-ms", &a.run_ms, "live: overall deadline");
  flags.add_u32("shards", &a.shards,
                "live: cluster shard count, for per-shard op attribution");
  flags.add_string("key-dist", &a.key_dist,
                   "live: update-operand distribution: seq | uniform | "
                   "zipf:<s>");
  flags.add_u32("keys", &a.keys,
                "live: key-space size for uniform/zipf operands");
  flags.add_double("arrival-rate", &a.arrival_rate,
                   "live: open-loop aggregate arrival rate in ops/sec "
                   "(0 = closed-loop scripts)");
  flags.add_u32("queue-cap", &a.queue_cap,
                "open-loop: max uncompleted backlog per client before an "
                "arrival is shed (0 = unbounded)");
  flags.parse_or_exit(argc, argv);
  if (a.shards == 0) flags.fail("--shards must be at least 1");
  if (a.keys == 0) flags.fail("--keys must be at least 1");
  if (a.key_dist != "seq" && a.key_dist != "uniform") {
    bool zipf_ok = false;
    if (a.key_dist.rfind("zipf:", 0) == 0) {
      const std::string s = a.key_dist.substr(5);
      char* end = nullptr;
      const double exp = std::strtod(s.c_str(), &end);
      zipf_ok = !s.empty() && end == s.c_str() + s.size() &&
                std::isfinite(exp) && exp > 0.0;
    }
    if (!zipf_ok) {
      flags.fail("--key-dist must be seq | uniform | zipf:<s> with s > 0");
    }
  }
  if (a.arrival_rate < 0.0) flags.fail("--arrival-rate must be >= 0");
  if (a.arrival_rate > 0.0 && a.topology.empty()) {
    flags.fail("--arrival-rate is a live-mode (--topology) option");
  }
  return a;
}

/// Seeded operand sampler for --key-dist. zipf:<s> precomputes the CDF of
/// 1/rank^s over --keys ranks and inverts it by binary search, so rank 1
/// absorbs most of the mass for s >= 1 — the classic hot-key workload.
/// Deterministic per (--seed, client): reruns offer the same key stream.
class KeySampler {
 public:
  KeySampler(const std::string& dist, std::uint32_t keys, std::uint64_t seed)
      : keys_(keys), rng_(seed == 0 ? 1 : seed) {
    if (dist == "uniform") {
      mode_ = Mode::kUniform;
    } else if (dist.rfind("zipf:", 0) == 0) {
      mode_ = Mode::kZipf;
      const double s = std::stod(dist.substr(5));
      cdf_.reserve(keys);
      double total = 0.0;
      for (std::uint32_t r = 1; r <= keys; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r), s);
        cdf_.push_back(total);
      }
      for (double& c : cdf_) c /= total;
    }
  }

  /// Next key in [0, keys); `fallback` is returned in seq mode so the
  /// caller keeps the old unique-per-op operands.
  std::uint64_t next(std::uint64_t fallback) {
    switch (mode_) {
      case Mode::kSeq: return fallback;
      case Mode::kUniform: return next_u64() % keys_;
      case Mode::kZipf: {
        const double u = static_cast<double>(next_u64() >> 11) *
                         (1.0 / 9007199254740992.0);  // [0,1) from 53 bits
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<std::uint64_t>(it - cdf_.begin());
      }
    }
    return fallback;
  }

 private:
  enum class Mode { kSeq, kUniform, kZipf };
  std::uint64_t next_u64() {
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_;
  }

  Mode mode_ = Mode::kSeq;
  std::uint32_t keys_;
  std::uint64_t rng_;
  std::vector<double> cdf_;
};

/// Parses "<id> <host> <port>" lines; duplicates/garbage are fatal.
std::vector<net::PeerAddr> load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open topology file '" << path << "'\n";
    std::exit(2);
  }
  std::vector<net::PeerAddr> peers;
  std::set<std::uint32_t> ids;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint32_t id = 0;
    std::string host;
    std::uint32_t port = 0;
    if (!(ls >> id)) continue;
    if (!(ls >> host >> port) || port > 65535 || !ids.insert(id).second) {
      std::cerr << "error: bad topology line: '" << line << "'\n";
      std::exit(2);
    }
    peers.push_back(net::PeerAddr{id, host,
                                  static_cast<std::uint16_t>(port)});
  }
  if (peers.empty()) {
    std::cerr << "error: topology '" << path << "' has no entries\n";
    std::exit(2);
  }
  std::sort(peers.begin(), peers.end(),
            [](const net::PeerAddr& x, const net::PeerAddr& y) {
              return x.id < y.id;
            });
  return peers;
}

double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = std::min(
      v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  return v[i];
}

int run_sim(const Args& a) {
  harness::ThroughputScenario sc;
  if (!harness::throughput_protocol_from_name(a.protocol, &sc.protocol)) {
    std::cerr << "error: unknown protocol '" << a.protocol
              << "' (sim mode: faleiro-la | gwts | gsbs)\n";
    return 2;
  }
  const bool crash = sc.protocol == harness::ThroughputProtocol::kFaleiro;
  sc.n = a.n;
  sc.f = a.f != 0 ? a.f : (crash ? (a.n - 1) / 2 : (a.n - 1) / 3);
  sc.batch.max_batch = a.batch;
  sc.batch.max_queue = a.queue;
  sc.batch.flush_age = a.flush_age;
  sc.batch.pipeline = a.pipeline;
  sc.commands_per_proc = a.commands;
  sc.window = a.window;
  sc.seed = a.seed;

  const harness::ThroughputReport rep = harness::run_throughput(sc);

  std::cout << "protocol=" << a.protocol << " n=" << sc.n << " f=" << sc.f
            << " batch=" << a.batch << " queue=" << a.queue
            << " pipeline=" << (a.pipeline ? "on" : "off") << " seed="
            << a.seed << "\n"
            << "  commands decided:  " << rep.commands << " ("
            << (rep.completed ? "all feeds drained" : "INCOMPLETE") << ")\n"
            << "  throughput:        " << rep.commands_per_ktick
            << " commands/ktick over " << rep.end_time << " ticks\n"
            << "  decide latency:    p50=" << rep.p50_latency
            << " p99=" << rep.p99_latency << " ticks\n"
            << "  mean batch size:   " << rep.mean_batch_size << "\n"
            << "  backpressure:      " << rep.backpressure_rejections
            << " rejected submits\n"
            << "  messages:          " << rep.total_msgs << "\n"
            << "  safety (la/spec):  " << (rep.spec.ok() ? "ok" : "FAILED")
            << "\n";
  if (!rep.spec.ok()) std::cout << rep.spec.diagnostic << "\n";

  if (!a.json_path.empty()) {
    bench::Json j;
    bench::add_build_info(j);
    j.set("mode", "sim")
        .set("protocol", a.protocol)
        .set("n", static_cast<std::uint64_t>(sc.n))
        .set("f", static_cast<std::uint64_t>(sc.f))
        .set("batch", static_cast<std::uint64_t>(a.batch))
        .set("queue", static_cast<std::uint64_t>(a.queue))
        .set("pipeline", a.pipeline)
        .set("seed", a.seed)
        .set("commands", rep.commands)
        .set("completed", rep.completed)
        .set("commands_per_ktick", rep.commands_per_ktick)
        .set("p50_latency", rep.p50_latency)
        .set("p99_latency", rep.p99_latency)
        .set("mean_batch_size", rep.mean_batch_size)
        .set("backpressure_rejections", rep.backpressure_rejections)
        .set("total_msgs", rep.total_msgs)
        .set("spec_ok", rep.spec.ok());
    if (!j.write(a.json_path)) {
      std::cerr << "warning: could not write " << a.json_path << "\n";
    }
  }
  return rep.completed && rep.spec.ok() ? 0 : 1;
}

int run_live(const Args& a) {
  const std::vector<net::PeerAddr> peers = load_topology(a.topology);
  const std::uint32_t num_endpoints = peers.back().id + 1;
  const std::uint32_t f = a.f != 0 ? a.f : (a.n - 1) / 3;
  const std::uint32_t base = a.client_base != 0 ? a.client_base : a.n;
  if (base < a.n || base + a.clients > num_endpoints) {
    std::cerr << "error: client ids " << base << ".." << base + a.clients - 1
              << " must be topology entries >= n (" << a.n << ")\n";
    return 2;
  }

  // One transport + one Algorithm 5/6 client per topology id. Each client
  // is closed-loop by construction: ops run strictly one at a time.
  struct LiveClient {
    std::unique_ptr<net::SocketTransport> net;
    std::unique_ptr<rsm::Client> client;
  };
  const bool open_loop = a.arrival_rate > 0.0;
  std::vector<LiveClient> live;
  std::vector<double> latencies_us;  // op hooks run under dispatch locks,
  std::mutex lat_mu;                 // one per transport -> guard merges
  // Per-client completion counters: written by the op hook (under that
  // client's dispatch lock), read lock-free by the open-loop pacer to
  // bound each backlog.
  const auto done_ops =
      std::make_unique<std::atomic<std::uint64_t>[]>(a.clients);
  std::vector<KeySampler> samplers;

  for (std::uint32_t k = 0; k < a.clients; ++k) {
    const ProcessId cid = base + k;
    samplers.emplace_back(a.key_dist, a.keys,
                          a.seed ^ (0x9e3779b97f4a7c15ull * (k + 1)));
    net::SocketConfig scfg;
    scfg.self = cid;
    scfg.peers = peers;
    scfg.num_processes = num_endpoints;
    scfg.auth_seed = a.seed;
    LiveClient lc;
    lc.net = std::make_unique<net::SocketTransport>(scfg);
    lc.net->bind_and_listen();
    // Closed loop: the whole script up front, executed back to back.
    // Open loop: an empty script; the pacer below appends every arrival.
    std::vector<rsm::Op> script;
    if (!open_loop) {
      for (std::uint32_t op = 0; op < a.ops; ++op) {
        script.push_back(rsm::Op::update(
            samplers[k].next(1000 + 100ull * k + op)));
      }
    }
    lc.client = std::make_unique<rsm::Client>(*lc.net, cid, a.n, f,
                                              std::move(script));
    lc.client->set_op_hook(
        [&lat_mu, &latencies_us, done = &done_ops[k]](
            const rsm::Client&, const rsm::OpRecord& r) {
          done->fetch_add(1, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> g(lat_mu);
          latencies_us.push_back(
              static_cast<double>(r.complete_time - r.invoke_time));
        });
    live.push_back(std::move(lc));
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (LiveClient& lc : live) lc.net->start();

  const auto deadline = t0 + std::chrono::milliseconds(a.run_ms);

  // Open-loop pacer: --clients * --ops arrivals at --arrival-rate ops/sec
  // aggregate, round-robin across clients, independent of completions.
  // An arrival that would push a client's uncompleted backlog past
  // --queue-cap is shed and counted — the generator stays open-loop
  // instead of degrading into coordinated omission.
  std::uint64_t arrivals = 0, shed = 0;
  std::vector<std::uint64_t> issued(a.clients, 0);
  const std::uint64_t total_arrivals =
      static_cast<std::uint64_t>(a.clients) * a.ops;
  if (open_loop) {
    const auto interval =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / a.arrival_rate));
    auto next_arrival = t0;
    while (arrivals < total_arrivals &&
           std::chrono::steady_clock::now() < deadline) {
      next_arrival += interval;
      std::this_thread::sleep_until(next_arrival);
      const std::uint32_t k =
          static_cast<std::uint32_t>(arrivals % a.clients);
      ++arrivals;
      const std::uint64_t outstanding =
          issued[k] - done_ops[k].load(std::memory_order_relaxed);
      if (a.queue_cap > 0 && outstanding >= a.queue_cap) {
        ++shed;
        continue;
      }
      const std::uint64_t operand =
          samplers[k].next(1000 + 100ull * k + issued[k]);
      auto lock = live[k].net->dispatch_lock();
      live[k].client->append_ops({rsm::Op::update(operand)});
      ++issued[k];
    }
  }

  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    all_done = true;
    for (LiveClient& lc : live) {
      auto lock = lc.net->dispatch_lock();
      all_done = all_done && lc.client->done();
    }
  }
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - t0)
          .count();
  for (LiveClient& lc : live) lc.net->stop();

  // Attribute each op to the shard its command hashes to (the same FNV
  // routing the cluster's Routers use), so the counters below are per
  // TARGET SHARD, not one aggregate — a hot or wedged shard shows up as
  // its own retry/incomplete column. With --shards 1 everything lands in
  // shard 0, which is exactly the old aggregate.
  const shard::ShardMap smap(a.shards);
  struct ShardStats {
    std::uint64_t ops = 0;
    std::uint64_t completed = 0;
    std::uint64_t retries = 0;  // backpressure nacks absorbed
  };
  std::vector<ShardStats> per_shard(a.shards);
  std::uint64_t completed = 0;
  std::uint64_t retries = 0;
  for (const LiveClient& lc : live) {
    for (const auto& rec : lc.client->history()) {
      ShardStats& ss = per_shard[smap.shard_of(rec.cmd)];
      ++ss.ops;
      ss.completed += rec.completed;
      ss.retries += rec.retries;
      completed += rec.completed;
    }
    retries += lc.client->backpressure_retries();
  }
  // In open-loop mode the success target is what the pacer actually
  // injected: shed arrivals are the generator's own bounded-queue policy
  // at work, not missing work.
  std::uint64_t issued_total = 0;
  for (const std::uint64_t i : issued) issued_total += i;
  const std::uint64_t target =
      open_loop ? issued_total
                : static_cast<std::uint64_t>(a.clients) * a.ops;
  const double ops_per_sec =
      wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
  const double p50 = percentile(latencies_us, 0.50);
  const double p99 = percentile(latencies_us, 0.99);

  std::cout << "live rsm load: " << a.clients << " client(s) x " << a.ops
            << " update op(s), n=" << a.n << " f=" << f
            << " key-dist=" << a.key_dist << "\n";
  if (open_loop) {
    std::cout << "  open loop:           " << a.arrival_rate
              << " ops/sec offered; " << arrivals << " arrival(s), "
              << issued_total << " issued, " << shed
              << " shed (queue-cap " << a.queue_cap << ")\n";
  }
  std::cout << "  completed:           " << completed << "/" << target
            << (all_done ? "" : "  (DEADLINE HIT)") << "\n"
            << "  throughput:          " << ops_per_sec << " ops/sec over "
            << wall_s << " s\n"
            << "  op latency:          p50=" << p50 << " p99=" << p99
            << " us\n"
            << "  backpressure retries " << retries << "\n";
  for (std::uint32_t s = 0; s < a.shards; ++s) {
    std::cout << "  shard " << s << ": ops=" << per_shard[s].ops
              << " completed=" << per_shard[s].completed
              << " retries=" << per_shard[s].retries << "\n";
  }

  if (!a.json_path.empty()) {
    bench::Json j;
    bench::add_build_info(j);
    j.set("mode", "live")
        .set("clients", static_cast<std::uint64_t>(a.clients))
        .set("ops_per_client", static_cast<std::uint64_t>(a.ops))
        .set("n", static_cast<std::uint64_t>(a.n))
        .set("f", static_cast<std::uint64_t>(f))
        .set("completed", completed)
        .set("target", target)
        .set("ops_per_sec", ops_per_sec)
        .set("p50_latency_us", p50)
        .set("p99_latency_us", p99)
        .set("backpressure_retries", retries)
        .set("shards", static_cast<std::uint64_t>(a.shards))
        .set("key_dist", a.key_dist)
        .set("keys", static_cast<std::uint64_t>(a.keys))
        .set("open_loop", open_loop)
        .set("arrival_rate", a.arrival_rate)
        .set("arrivals", arrivals)
        .set("issued", issued_total)
        .set("shed", shed);
    std::string srows = "[";
    for (std::uint32_t s = 0; s < a.shards; ++s) {
      bench::Json row;
      row.set("shard", static_cast<std::uint64_t>(s))
          .set("ops", per_shard[s].ops)
          .set("completed", per_shard[s].completed)
          .set("retries", per_shard[s].retries);
      if (s > 0) srows += ",";
      srows += row.str();
    }
    srows += "]";
    j.raw("shard_stats", srows);
    if (!j.write(a.json_path)) {
      std::cerr << "warning: could not write " << a.json_path << "\n";
    }
  }
  return completed == target ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  return a.topology.empty() ? run_sim(a) : run_live(a);
}
