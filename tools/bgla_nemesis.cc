// bgla_nemesis — scheduled fault campaigns against a real bgla_node
// cluster, then spec-check the survivors' durable state.
//
// The driver forks one bgla_node per replica (each with its own
// --data-dir and --chaos-stdin), runs a campaign of faults against the
// live cluster, heals it, waits for every node to finish, and then reads
// the surviving data directories back (store::ReplicaStore::
// peek_latest_state + la::summarize_state) to run the executable
// specifications over the merged history:
//   one-shot protocols (sbs)            la::check_la
//   generalized protocols (gwts, gsbs,  la::check_gla + a global
//   faleiro-la)                         "every submitted value decided"
//                                       inclusion check
//   sharded RSM (rsm-replica,           one la::check_gla verdict PER
//   --shards S, --clients C drivers)    SHARD over the per-shard
//                                       WAL/snapshot subdirs
//                                       (node<i>/shard-<k>), plus the
//                                       per-shard submitted⊆decided
//                                       inclusion check
//
// Fault repertoire (--campaign):
//   none           fault-free baseline (observability/bound-table runs)
//   kill-restart   kill -9 up to f replicas, restart them from disk after
//                  a delay — restarted replicas must rejoin and recover
//   partition      asymmetric partitions: victim cannot reach (or hear) a
//                  set of peers while everyone else proceeds
//   loss           cluster-wide loss bursts
//   delay          cluster-wide delay spikes
//   mixed          all of the above, interleaved (default)
//   region-partition  correlated partition: region 0 is cut off from every
//                  other region in BOTH directions at once (requires
//                  --topology-mode regions)
//   wan-brownout   every inter-region link degrades to a storm policy
//                  (high latency/jitter/loss) and heals back to the BASE
//                  WAN matrix, not to loopback
//   byz-equivocate node n-1 runs byz::GsbsPartitionEquivocator while the
//                  honest nodes are split into two halves that cannot talk
//                  to each other — only the adversary straddles the cut
//                  (gsbs only, n >= 3f+1)
//   byz-replay     node n-1 runs byz::GsbsStaleCertReplayer; honest
//                  replicas are kill -9ed and restarted so their type-70
//                  catch-up runs against the stale-certificate replays
//   compact-churn  decided-prefix compaction racing kill -9: forces
//                  --delta-wire and an aggressive --compact-wal-bytes so
//                  every persist folds the snapshot, then kills/restarts
//                  replicas with minimal dead time — restarts recover
//                  from folded (v3) snapshots and rebaseline the delta
//                  wire via the HELLO incarnation bump
//
// WAN emulation (--topology-mode regions): replicas are grouped into
// regions of --region-size; the driver writes a links.txt matrix (fast
// --intra-link policies inside a region, slow --wan-link policies across)
// that every replica loads via --link-matrix. `heal` restores this base
// matrix. --retransmit-ms defaults to 120 in regions mode so the resend
// period sits above the emulated WAN RTT.
//
// --trace gives every node incarnation its own JSONL trace file
// (node<i>.inc<k>.trace.jsonl — per-incarnation so a restart never
// truncates pre-crash evidence) and writes the driver's fault timeline
// to <workdir>/faults.jsonl; feed all of it to tools/bgla_trace for
// per-fault analysis and the paper's bound verdicts.
//
// Example (the ISSUE acceptance campaigns):
//   bgla_nemesis --node-bin ./bgla_node --protocol sbs  --n 7  --f 1
//   bgla_nemesis --node-bin ./bgla_node --protocol gwts --n 10 --f 3
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "byz/strategies.h"
#include "la/recovery.h"
#include "la/spec.h"
#include "obs/trace.h"
#include "store/replica_store.h"
#include "util/check.h"
#include "util/flags.h"

using namespace bgla;

namespace {

struct Args {
  std::string node_bin = "./bgla_node";
  std::string protocol = "gwts";
  std::string workdir = "nemesis-run";
  std::string campaign = "mixed";
  std::uint32_t n = 7;
  std::uint32_t f = 1;
  std::uint64_t seed = 42;
  std::uint32_t kills = 2;          // kill -9/restart cycles
  std::uint32_t submissions = 2;    // per node (generalized protocols)
  std::uint32_t decisions = 2;      // base decided-round target per node
  std::uint32_t settle_ms = 1500;   // warmup before the first fault
  std::uint32_t fault_ms = 1500;    // how long each fault is held
  std::uint32_t restart_after_ms = 600;  // dead time before a restart
  std::uint32_t node_run_ms = 60000;     // per-node deadline
  std::uint32_t node_linger_ms = 5000;   // post-finish serving window
  std::uint32_t drain_ms = 45000;        // wait for nodes after healing
  bool trace = false;  // per-node JSONL traces + the faults.jsonl timeline
  bool trace_spans = false;  // forward --trace-spans (causal phase spans)
  // >0: node <id> serves live introspection on 127.0.0.1:<base>+<id>
  // (/metrics, /healthz, /spans) for mid-campaign curls and bgla_top.
  std::uint32_t metrics_port_base = 0;
  // Ingress batching knobs, forwarded verbatim to every spawned node.
  std::uint32_t batch = 0;
  std::uint32_t queue = 0;
  bool pipeline = false;
  // Wire/compaction knobs, forwarded to every spawned node. The
  // compact-churn campaign turns these on with aggressive defaults.
  bool delta_wire = false;
  std::uint64_t compact_wal_bytes = 0;
  std::uint32_t fold_keep = 1;
  // Sharded RSM campaigns (--protocol rsm-replica): every replica runs
  // --shards GLA instances behind its Router; --clients driver processes
  // (topology ids n..n+clients-1) each run --ops update/read operations.
  std::uint32_t shards = 1;
  std::uint32_t clients = 1;
  std::uint32_t ops = 4;
  // WAN emulation: group replicas into regions of --region-size and write
  // a base link matrix (intra/wan policy per ordered pair) that every
  // replica loads; `heal` restores this matrix, not loopback.
  std::string topology_mode = "flat";  // flat | regions
  std::uint32_t region_size = 3;
  std::string intra_link = "lat=1";
  std::string wan_link = "lat=25,jitter=10,loss=0.02,bw=4096";
  std::uint32_t retransmit_ms = 0;  // 0 = auto (120 in regions mode)
  // Byzantine campaigns (set from --campaign, not flags): node byz_id runs
  // `--byzantine byz_strategy` instead of a correct replica.
  static constexpr std::uint32_t kNoByz = 0xffffffffu;
  std::uint32_t byz_id = kNoByz;
  std::string byz_strategy;
};

Args parse(int argc, char** argv) {
  Args a;
  util::FlagSet flags("bgla_nemesis");
  flags.add_string("node-bin", &a.node_bin, "path to the bgla_node binary");
  flags.add_string("protocol", &a.protocol,
                   "sbs | gwts | gsbs | faleiro-la");
  flags.add_string("workdir", &a.workdir,
                   "scratch dir for topology, logs and data dirs");
  flags.add_string("campaign", &a.campaign,
                   "none | kill-restart | partition | loss | delay | mixed | "
                   "region-partition | wan-brownout | byz-equivocate | "
                   "byz-replay");
  flags.add_u32("n", &a.n, "replicas");
  flags.add_u32("f", &a.f, "resilience parameter (also max concurrent kills)");
  flags.add_u64("seed", &a.seed, "deployment key seed");
  flags.add_u32("kills", &a.kills, "kill -9/restart cycles");
  flags.add_u32("submissions", &a.submissions,
                "values submitted per node (generalized protocols)");
  flags.add_u32("decisions", &a.decisions,
                "base decided-round target per node");
  flags.add_u32("settle-ms", &a.settle_ms, "warmup before the first fault");
  flags.add_u32("fault-ms", &a.fault_ms, "duration of each held fault");
  flags.add_u32("restart-after-ms", &a.restart_after_ms,
                "dead time before restarting a killed replica");
  flags.add_u32("node-run-ms", &a.node_run_ms, "per-node deadline");
  flags.add_u32("node-linger-ms", &a.node_linger_ms,
                "how long finished nodes keep serving peers");
  flags.add_u32("drain-ms", &a.drain_ms,
                "post-heal wait for all nodes to finish");
  flags.add_bool("trace", &a.trace,
                 "write per-node JSONL traces and a faults.jsonl fault "
                 "timeline into --workdir (feed both to tools/bgla_trace)");
  flags.add_bool("trace-spans", &a.trace_spans,
                 "forward --trace-spans to every node (causal per-command "
                 "phase spans; analyze with bgla_trace --critical-path)");
  flags.add_u32("metrics-port-base", &a.metrics_port_base,
                "forward --metrics-port <base>+<id> to every node so the "
                "live /metrics, /healthz and /spans endpoints are "
                "reachable mid-campaign (0 = off)");
  flags.add_u32("batch", &a.batch,
                "forward --batch to every node (values per round batch)");
  flags.add_u32("queue", &a.queue,
                "forward --queue to every node (ingress queue bound)");
  flags.add_bool("pipeline", &a.pipeline,
                 "forward --pipeline to every node (gwts/gsbs)");
  flags.add_u32("shards", &a.shards,
                "rsm-replica: GLA shards per replica (forwarded --shards)");
  flags.add_u32("clients", &a.clients,
                "rsm-replica: closed-loop client processes");
  flags.add_u32("ops", &a.ops, "rsm-replica: operations per client");
  flags.add_string("topology-mode", &a.topology_mode,
                   "flat | regions (regions writes a per-pair link matrix: "
                   "--intra-link inside a region, --wan-link across)");
  flags.add_u32("region-size", &a.region_size,
                "replicas per region (regions mode; region of id = "
                "id / region-size)");
  flags.add_string("intra-link", &a.intra_link,
                   "LinkPolicy spec for same-region replica pairs");
  flags.add_string("wan-link", &a.wan_link,
                   "LinkPolicy spec for cross-region replica pairs");
  flags.add_u32("retransmit-ms", &a.retransmit_ms,
                "forward --retransmit-ms to every node (0 = auto: 120 in "
                "regions mode, transport default otherwise)");
  flags.add_bool("delta-wire", &a.delta_wire,
                 "forward --delta-wire to every node (delta-encoded "
                 "proposals/acks; compact-churn turns this on)");
  flags.add_u64("compact-wal-bytes", &a.compact_wal_bytes,
                "forward --compact-wal-bytes to every replica (0 = "
                "count-based folds; compact-churn defaults to 512)");
  flags.add_u32("fold-keep", &a.fold_keep,
                "forward --fold-keep to every replica");
  flags.parse_or_exit(argc, argv);
  if (a.protocol != "sbs" && a.protocol != "gwts" && a.protocol != "gsbs" &&
      a.protocol != "faleiro-la" && a.protocol != "rsm-replica") {
    flags.fail(
        "--protocol must be sbs | gwts | gsbs | faleiro-la | rsm-replica");
  }
  if (a.n < 2) flags.fail("--n must be at least 2");
  if (a.shards == 0) flags.fail("--shards must be at least 1");
  if (a.shards > 1 && a.protocol != "rsm-replica") {
    flags.fail("--shards > 1 requires --protocol rsm-replica");
  }
  if (a.protocol == "rsm-replica" && a.clients == 0) {
    flags.fail("rsm-replica needs at least one --clients driver");
  }
  if (a.topology_mode != "flat" && a.topology_mode != "regions") {
    flags.fail("--topology-mode must be flat | regions");
  }
  if (a.region_size == 0) flags.fail("--region-size must be at least 1");
  if ((a.campaign == "region-partition" || a.campaign == "wan-brownout") &&
      a.topology_mode != "regions") {
    flags.fail("--campaign " + a.campaign +
               " requires --topology-mode regions");
  }
  if (a.campaign == "byz-equivocate" || a.campaign == "byz-replay") {
    // The adversary occupies the last replica slot; the honest remainder
    // must still clear the ⌊(n+f)/2⌋+1 certificate quorum on its own.
    if (a.protocol != "gsbs") {
      flags.fail("--campaign " + a.campaign + " requires --protocol gsbs");
    }
    if (a.n < 3 * a.f + 1) {
      flags.fail("byzantine campaigns need n >= 3f+1");
    }
    a.byz_id = a.n - 1;
    a.byz_strategy =
        a.campaign == "byz-equivocate" ? "equivocate" : "stale-replay";
  }
  if (a.topology_mode == "regions" && a.retransmit_ms == 0) {
    // The 50ms transport default sits below an emulated WAN RTT and turns
    // every cross-region frame into a retransmit storm.
    a.retransmit_ms = 120;
  }
  if (a.campaign == "compact-churn") {
    // The point of the campaign is snapshot folds racing kill -9: force
    // the delta wire on and make every persist due for a fold unless the
    // caller picked a budget themselves.
    a.delta_wire = true;
    if (a.compact_wal_bytes == 0) a.compact_wal_bytes = 512;
  }
  return a;
}

void sleep_ms(std::uint32_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Binds an ephemeral TCP port, reads it back and releases it. The small
/// window before the node rebinds it is tolerable for a test driver.
std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BGLA_CHECK_MSG(fd >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  BGLA_CHECK_MSG(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind(): " << std::strerror(errno));
  socklen_t len = sizeof(addr);
  BGLA_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
             0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct Node {
  std::uint32_t id = 0;
  pid_t pid = -1;
  int stdin_fd = -1;          // chaos-command pipe (write end)
  std::string data_dir;
  std::string log_path;
  std::uint32_t restarts = 0;
  bool running = false;
  bool exited_ok = false;
  bool byzantine = false;  // adversary slot: no data dir, no exit duty
};

class Cluster {
 public:
  Cluster(const Args& a, std::vector<std::uint16_t> ports)
      : a_(a), ports_(std::move(ports)) {
    // The topology covers every spawned process: n replicas, plus (rsm
    // only) the closed-loop client drivers at ids n..n+clients-1.
    const std::uint32_t total = static_cast<std::uint32_t>(ports_.size());
    topo_path_ = a_.workdir + "/topology.txt";
    std::ofstream topo(topo_path_, std::ios::trunc);
    for (std::uint32_t i = 0; i < total; ++i) {
      topo << i << " 127.0.0.1 " << ports_[i] << "\n";
    }
    BGLA_CHECK_MSG(topo.good(), "cannot write " << topo_path_);
    topo.close();
    // WAN emulation: one base-LinkPolicy rule per ordered replica pair,
    // loaded by every replica via --link-matrix. Clients stay unshaped —
    // the WAN lives between replicas, not between a driver and its home
    // replica.
    if (a_.topology_mode == "regions") {
      links_path_ = a_.workdir + "/links.txt";
      std::ofstream links(links_path_, std::ios::trunc);
      links << "# regions of " << a_.region_size << " (region = id / "
            << a_.region_size << "); intra=" << a_.intra_link
            << " wan=" << a_.wan_link << "\n";
      for (std::uint32_t i = 0; i < a_.n; ++i) {
        for (std::uint32_t j = 0; j < a_.n; ++j) {
          if (i == j) continue;
          const bool same_region =
              i / a_.region_size == j / a_.region_size;
          links << i << " " << j << " "
                << (same_region ? a_.intra_link : a_.wan_link) << "\n";
        }
      }
      BGLA_CHECK_MSG(links.good(), "cannot write " << links_path_);
    }
    nodes_.resize(total);
    for (std::uint32_t i = 0; i < total; ++i) {
      nodes_[i].id = i;
      nodes_[i].byzantine = (i == a_.byz_id);
      // Clients are stateless drivers and the adversary is deliberately
      // stateless too (its "state" is reconstructed offline): no durable
      // directory for either.
      if (i < a_.n && !nodes_[i].byzantine) {
        nodes_[i].data_dir = a_.workdir + "/node" + std::to_string(i);
      }
      nodes_[i].log_path = a_.workdir + "/node" + std::to_string(i) + ".log";
      // Each campaign starts from a clean slate: a reused workdir would
      // otherwise seed every node with the terminal state (and possibly a
      // different state-format) of the previous campaign.
      std::error_code ec;
      if (!nodes_[i].data_dir.empty()) {
        std::filesystem::remove_all(nodes_[i].data_dir, ec);
      }
      std::filesystem::remove(nodes_[i].log_path, ec);
    }
  }

  ~Cluster() {
    for (Node& nd : nodes_) {
      if (nd.running && nd.pid > 0) {
        ::kill(nd.pid, SIGKILL);
        ::waitpid(nd.pid, nullptr, 0);
      }
      if (nd.stdin_fd >= 0) ::close(nd.stdin_fd);
    }
  }

  Node& node(std::uint32_t id) { return nodes_.at(id); }

  void spawn(std::uint32_t id) {
    Node& nd = nodes_.at(id);
    BGLA_CHECK(!nd.running);
    int pipe_fds[2];
    BGLA_CHECK(::pipe(pipe_fds) == 0);
    const int log_fd = ::open(nd.log_path.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
    BGLA_CHECK_MSG(log_fd >= 0, "open " << nd.log_path);

    // A restarted replica's duty is to recover and rejoin: the rejoin
    // round unconditionally re-proposes anything undecided, so one
    // decided round (from disk or from that round) proves recovery.
    // Demanding more can be unsatisfiable — once the rest of the cluster
    // quiesced there is nobody left to start extra rounds. faleiro-la
    // likewise decides only when new values arrive, so it gets target 1
    // from the start; the spec checkers still verify every submitted
    // value decided.
    const std::uint32_t target =
        (a_.protocol == "faleiro-la" || nd.restarts > 0) ? 1
                                                         : a_.decisions;
    const bool is_client = id >= a_.n;
    std::vector<std::string> argv = {
        a_.node_bin,
        "--topology", topo_path_,
        "--id", std::to_string(id),
        "--protocol", a_.protocol,
        "--n", std::to_string(a_.n),
        "--f", std::to_string(a_.f),
        "--seed", std::to_string(a_.seed),
        "--run-ms", std::to_string(a_.node_run_ms),
        "--linger-ms", std::to_string(a_.node_linger_ms),
        "--chaos-stdin",
    };
    if (nd.byzantine) {
      argv.push_back("--byzantine");
      argv.push_back(a_.byz_strategy);
    } else if (is_client) {
      argv.push_back("--client");
      argv.push_back("--ops");
      argv.push_back(std::to_string(a_.ops));
    } else {
      argv.push_back("--submissions");
      argv.push_back(std::to_string(a_.submissions));
      argv.push_back("--decisions");
      argv.push_back(std::to_string(target));
      argv.push_back("--data-dir");
      argv.push_back(nd.data_dir);
      if (a_.shards > 1) {
        argv.push_back("--shards");
        argv.push_back(std::to_string(a_.shards));
      }
      if (a_.compact_wal_bytes != 0) {
        argv.push_back("--compact-wal-bytes");
        argv.push_back(std::to_string(a_.compact_wal_bytes));
        argv.push_back("--fold-keep");
        argv.push_back(std::to_string(a_.fold_keep));
      }
    }
    // The whole deployment speaks one wire dialect: clients and
    // adversaries get the flag too (their ineligible traffic passes
    // through unwrapped either way).
    if (a_.delta_wire) argv.push_back("--delta-wire");
    if (a_.batch != 0) {
      argv.push_back("--batch");
      argv.push_back(std::to_string(a_.batch));
    }
    if (a_.queue != 0) {
      argv.push_back("--queue");
      argv.push_back(std::to_string(a_.queue));
    }
    if (a_.pipeline) argv.push_back("--pipeline");
    if (!links_path_.empty() && id < a_.n) {
      argv.push_back("--link-matrix");
      argv.push_back(links_path_);
    }
    if (a_.retransmit_ms != 0) {
      argv.push_back("--retransmit-ms");
      argv.push_back(std::to_string(a_.retransmit_ms));
    }
    if (a_.trace) {
      // One trace file per incarnation: the writer truncates on open, so
      // reusing the name across a kill -9/restart would erase the
      // pre-crash events the analyzer needs.
      argv.push_back("--trace-file");
      argv.push_back(a_.workdir + "/node" + std::to_string(id) + ".inc" +
                     std::to_string(nd.restarts) + ".trace.jsonl");
      if (a_.trace_spans) argv.push_back("--trace-spans");
    }
    if (a_.metrics_port_base != 0) {
      argv.push_back("--metrics-port");
      argv.push_back(std::to_string(a_.metrics_port_base + id));
    }

    const pid_t pid = ::fork();
    BGLA_CHECK_MSG(pid >= 0, "fork(): " << std::strerror(errno));
    if (pid == 0) {
      ::dup2(pipe_fds[0], STDIN_FILENO);
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      ::close(log_fd);
      std::vector<char*> cargv;
      cargv.reserve(argv.size() + 1);
      for (std::string& s : argv) cargv.push_back(s.data());
      cargv.push_back(nullptr);
      ::execv(cargv[0], cargv.data());
      std::perror("execv bgla_node");
      ::_exit(127);
    }
    ::close(pipe_fds[0]);
    ::close(log_fd);
    nd.pid = pid;
    nd.stdin_fd = pipe_fds[1];
    nd.running = true;
  }

  void kill9(std::uint32_t id) {
    Node& nd = nodes_.at(id);
    BGLA_CHECK(nd.running);
    std::cout << "[nemesis] kill -9 node " << id << " (pid " << nd.pid
              << ")\n";
    ::kill(nd.pid, SIGKILL);
    ::waitpid(nd.pid, nullptr, 0);
    ::close(nd.stdin_fd);
    nd.stdin_fd = -1;
    nd.pid = -1;
    nd.running = false;
    ++nd.restarts;
  }

  void restart(std::uint32_t id) {
    std::cout << "[nemesis] restart node " << id << " from "
              << nodes_.at(id).data_dir << "\n";
    spawn(id);
  }

  /// Sends one chaos command line to a node (no-op if it is down).
  void chaos(std::uint32_t id, const std::string& line) {
    Node& nd = nodes_.at(id);
    if (!nd.running || nd.stdin_fd < 0) return;
    const std::string msg = line + "\n";
    [[maybe_unused]] ssize_t r =
        ::write(nd.stdin_fd, msg.data(), msg.size());
  }

  void chaos_all(const std::string& line) {
    for (std::uint32_t i = 0; i < a_.n; ++i) chaos(i, line);
  }

  /// Reaps any children that exited; returns the number still running.
  /// Byzantine adversaries are reaped but never counted: they serve until
  /// their deadline by design, and the driver kills them after the honest
  /// nodes drain rather than waiting a full --node-run-ms on them.
  std::uint32_t poll_running() {
    std::uint32_t running = 0;
    for (Node& nd : nodes_) {
      if (!nd.running) continue;
      int status = 0;
      const pid_t r = ::waitpid(nd.pid, &status, WNOHANG);
      if (r == nd.pid) {
        nd.running = false;
        nd.exited_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!nd.exited_ok && !nd.byzantine) {
          std::cout << "[nemesis] node " << nd.id
                    << " exited with failure status\n";
        }
        if (nd.stdin_fd >= 0) {
          ::close(nd.stdin_fd);
          nd.stdin_fd = -1;
        }
      } else if (!nd.byzantine) {
        ++running;
      }
    }
    return running;
  }

  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  const Args& a_;
  std::vector<std::uint16_t> ports_;
  std::string topo_path_;
  std::string links_path_;  // non-empty iff topology_mode == regions
  std::vector<Node> nodes_;
};

// ------------------------------------------------------------ campaigns --

/// Appends one kFault event ("<verb> [operand...]") to the driver's fault
/// timeline; the analyzer correlates these wall-clock windows with the
/// nodes' decide/rejoin events. No-op without --trace.
void record_fault(obs::TraceWriter* faults, std::uint32_t driver_id,
                  const std::string& desc) {
  if (faults == nullptr) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kFault;
  ev.node = driver_id;
  faults->record(std::move(ev.with("fault", desc)));
}

void run_kill_restart(const Args& a, Cluster& c, std::uint32_t cycles,
                      obs::TraceWriter* faults) {
  for (std::uint32_t k = 0; k < cycles; ++k) {
    // Up to f victims per cycle, rotating so different replicas get hit.
    const std::uint32_t victims = 1 + k % a.f;
    std::vector<std::uint32_t> hit;
    for (std::uint32_t v = 0; v < victims; ++v) {
      hit.push_back((k + v) % a.n);
    }
    for (const std::uint32_t id : hit) {
      c.kill9(id);
      record_fault(faults, a.n, "kill " + std::to_string(id));
    }
    sleep_ms(a.restart_after_ms);
    for (const std::uint32_t id : hit) {
      c.restart(id);
      record_fault(faults, a.n, "restart " + std::to_string(id));
    }
    sleep_ms(a.fault_ms);
  }
}

void run_partition(const Args& a, Cluster& c, obs::TraceWriter* faults) {
  // Asymmetric partition: the victim can talk to everyone, but cannot
  // hear f of its peers (and they cannot hear it on the reverse run).
  const std::uint32_t victim = 1 % a.n;
  for (std::uint32_t k = 0; k < a.f; ++k) {
    const std::uint32_t peer = (victim + 1 + k) % a.n;
    c.chaos(victim, "block-from " + std::to_string(peer));
    c.chaos(peer, "block-to " + std::to_string(victim));
  }
  std::cout << "[nemesis] asymmetric partition around node " << victim
            << " for " << a.fault_ms << "ms\n";
  record_fault(faults, a.n, "partition_start " + std::to_string(victim));
  sleep_ms(a.fault_ms);
  c.chaos_all("heal");
  record_fault(faults, a.n, "partition_end " + std::to_string(victim));
}

void run_loss_burst(const Args& a, Cluster& c, obs::TraceWriter* faults) {
  std::cout << "[nemesis] loss burst (25%) for " << a.fault_ms << "ms\n";
  c.chaos_all("loss 0.25");
  record_fault(faults, a.n, "loss_start 0.25");
  sleep_ms(a.fault_ms);
  c.chaos_all("loss 0");
  record_fault(faults, a.n, "loss_end");
}

void run_delay_spike(const Args& a, Cluster& c, obs::TraceWriter* faults) {
  std::cout << "[nemesis] delay spike (15ms/frame) for " << a.fault_ms
            << "ms\n";
  c.chaos_all("delay 15");
  record_fault(faults, a.n, "delay_start 15");
  sleep_ms(a.fault_ms);
  c.chaos_all("delay 0");
  record_fault(faults, a.n, "delay_end");
}

/// Correlated region failure: every link in or out of region 0 goes dark
/// at once, in both directions — the "someone cut the submarine cable"
/// event, as opposed to the single-victim asymmetric partition above.
/// Because shaping now covers HELLO frames too, a reconnect race cannot
/// pierce the cut; `heal` restores the base WAN matrix.
void run_region_partition(const Args& a, Cluster& c,
                          obs::TraceWriter* faults) {
  std::vector<std::uint32_t> inside, outside;
  for (std::uint32_t i = 0; i < a.n; ++i) {
    (i / a.region_size == 0 ? inside : outside).push_back(i);
  }
  for (const std::uint32_t i : inside) {
    for (const std::uint32_t j : outside) {
      c.chaos(i, "block-to " + std::to_string(j));
      c.chaos(i, "block-from " + std::to_string(j));
      c.chaos(j, "block-to " + std::to_string(i));
      c.chaos(j, "block-from " + std::to_string(i));
    }
  }
  std::cout << "[nemesis] region 0 (" << inside.size()
            << " nodes) partitioned from the other regions for "
            << a.fault_ms << "ms\n";
  record_fault(faults, a.n, "region_partition_start 0");
  sleep_ms(a.fault_ms);
  c.chaos_all("heal");
  record_fault(faults, a.n, "region_partition_end 0");
}

/// WAN brownout: every cross-region link degrades to a storm policy (high
/// latency, heavy jitter, real loss) while intra-region links stay clean,
/// then heals back to the base matrix — not to loopback.
void run_wan_brownout(const Args& a, Cluster& c, obs::TraceWriter* faults) {
  const std::string storm = "lat=120,jitter=80,loss=0.15,bw=256";
  for (std::uint32_t i = 0; i < a.n; ++i) {
    for (std::uint32_t j = 0; j < a.n; ++j) {
      if (i == j || i / a.region_size == j / a.region_size) continue;
      c.chaos(i, "link " + std::to_string(j) + " " + storm);
    }
  }
  std::cout << "[nemesis] WAN brownout (" << storm << ") for " << a.fault_ms
            << "ms\n";
  record_fault(faults, a.n, "wan_brownout_start " + storm);
  sleep_ms(a.fault_ms);
  c.chaos_all("heal");
  record_fault(faults, a.n, "wan_brownout_end");
}

/// Equivocate-under-partition: the honest nodes are split into two halves
/// that cannot talk to each other while the adversary (byz_id) straddles
/// the cut — exactly the window in which GsbsPartitionEquivocator's
/// conflicting batches (v1 to ids < n/2, v2 to the rest) could slip two
/// certificates for one round past a weaker quorum rule.
void run_byz_equivocate(const Args& a, Cluster& c, obs::TraceWriter* faults) {
  const std::uint32_t half = a.n / 2;
  for (std::uint32_t i = 0; i < half; ++i) {
    for (std::uint32_t j = half; j < a.n; ++j) {
      if (i == a.byz_id || j == a.byz_id) continue;
      c.chaos(i, "block-to " + std::to_string(j));
      c.chaos(i, "block-from " + std::to_string(j));
      c.chaos(j, "block-to " + std::to_string(i));
      c.chaos(j, "block-from " + std::to_string(i));
    }
  }
  std::cout << "[nemesis] honest halves partitioned around equivocator "
            << a.byz_id << " for " << a.fault_ms << "ms\n";
  record_fault(faults, a.n, "byz_equivocate_partition_start");
  sleep_ms(a.fault_ms);
  c.chaos_all("heal");
  record_fault(faults, a.n, "byz_equivocate_partition_end");
}

/// Stale-certificate replay: honest replicas are kill -9ed and restarted
/// so their type-70 catch-up broadcast races GsbsStaleCertReplayer's
/// duplicated frontier-0 answers; the rejoin must still land on a current
/// round (per-sender dedup + monotone max-folds + cert round binding).
void run_byz_replay(const Args& a, Cluster& c, std::uint32_t cycles,
                    obs::TraceWriter* faults) {
  const std::uint32_t honest = a.n - 1;  // byz_id == n-1
  for (std::uint32_t k = 0; k < cycles; ++k) {
    const std::uint32_t id = k % honest;
    c.kill9(id);
    record_fault(faults, a.n, "kill " + std::to_string(id));
    sleep_ms(a.restart_after_ms);
    c.restart(id);
    record_fault(faults, a.n, "restart " + std::to_string(id));
    sleep_ms(a.fault_ms);
  }
}

/// Compaction churn: with --compact-wal-bytes forced low, EVERY durable
/// transition triggers a decided-prefix fold + snapshot rewrite, so
/// kill -9 lands inside or right after compactions and restarts recover
/// from freshly folded snapshots (v3 blobs with nonzero fold counters).
/// The delta wire is on throughout, so each restart also exercises the
/// HELLO-incarnation rebaseline path. Kills follow with almost no dead
/// time to maximize torn-snapshot/WAL races; a loss burst mid-sequence
/// adds retransmit pressure on the rejoin exchange.
void run_compact_churn(const Args& a, Cluster& c, std::uint32_t cycles,
                       obs::TraceWriter* faults) {
  for (std::uint32_t k = 0; k < cycles; ++k) {
    const std::uint32_t id = k % a.n;
    c.kill9(id);
    record_fault(faults, a.n, "kill " + std::to_string(id));
    sleep_ms(100);  // near-immediate restart: maximize mid-fold kills
    c.restart(id);
    record_fault(faults, a.n, "restart " + std::to_string(id));
    if (k + 1 == cycles / 2) {
      c.chaos_all("loss 0.2");
      record_fault(faults, a.n, "loss_start 0.2");
      sleep_ms(a.fault_ms / 2);
      c.chaos_all("loss 0");
      record_fault(faults, a.n, "loss_end");
    }
    sleep_ms(a.fault_ms);
  }
}

// -------------------------------------------------------------- checking --

struct CheckInput {
  std::vector<la::StateSummary> summaries;  // indexed by node id
};

bool check_one_shot(const Args& a, const CheckInput& in) {
  std::vector<la::LaView> views;
  for (std::uint32_t i = 0; i < a.n; ++i) {
    const la::StateSummary& s = in.summaries[i];
    la::LaView v;
    v.id = i;
    v.proposal = s.proposal;
    if (!s.decisions.empty()) v.decision = s.decisions.back().value;
    v.svs = s.svs;
    views.push_back(std::move(v));
  }
  const la::SpecResult res = la::check_la(views, /*byz_ids=*/{}, a.f);
  if (!res.ok()) {
    std::cout << "[nemesis] spec FAILED: " << res.diagnostic << "\n";
  }
  return res.ok();
}

bool check_generalized(const Args& a, const CheckInput& in) {
  std::vector<la::GlaView> views;
  lattice::Elem all_submitted;
  lattice::Elem all_decided;
  // Byzantine campaigns: the spec runs over the honest nodes' durable
  // views only, with B = the adversary's reconstructible disclosed join
  // (Non-Triviality: decisions ≤ ⊕(submissions ∪ B)). The equivocator's
  // values are a deterministic function of (id, value_base=100+id, round),
  // so no side channel from the adversary process is needed. The replayer
  // never discloses anything of its own: B stays bottom.
  lattice::Elem byz_disclosed;
  if (a.byz_strategy == "equivocate") {
    byz_disclosed = byz::GsbsPartitionEquivocator::disclosed_join(
        a.byz_id, 100 + a.byz_id, byz::kGsbsEquivocatorRounds);
  }
  for (std::uint32_t i = 0; i < a.n; ++i) {
    if (i == a.byz_id) continue;
    const la::StateSummary& s = in.summaries[i];
    la::GlaView v;
    v.id = i;
    v.submitted = s.submitted;
    for (const la::DecisionRecord& rec : s.decisions) {
      v.decisions.push_back(rec.value);
    }
    for (const lattice::Elem& e : s.submitted) {
      all_submitted = all_submitted.join(e);
    }
    if (!v.decisions.empty()) {
      all_decided = all_decided.join(v.decisions.back());
    }
    views.push_back(std::move(v));
  }
  bool ok = true;
  const la::GlaSpecResult res =
      la::check_gla(views, byz_disclosed, /*min_decisions=*/1);
  if (!res.ok()) {
    std::cout << "[nemesis] spec FAILED: " << res.diagnostic << "\n";
    ok = false;
  }
  // Global liveness across the merged durable history: every value any
  // replica ever submitted is in the join of the final decisions.
  if (!all_submitted.leq(all_decided)) {
    std::cout << "[nemesis] FAILED: submitted values missing from the "
                 "merged decided join\n  submitted: "
              << all_submitted.to_string()
              << "\n  decided:   " << all_decided.to_string() << "\n";
    ok = false;
  }
  return ok;
}

/// Sharded RSM campaigns: every shard is its own GLA instance with its own
/// WAL/snapshot subdirectory (node<i>/shard-<k>), so the spec runs once
/// per shard over that shard's surviving state. A shard the client
/// commands never hashed to may legitimately have decided nothing
/// (min_decisions = 0); what every shard must satisfy is comparability of
/// decisions and the inclusion of everything submitted to it in its
/// merged decided join.
bool check_sharded_rsm(const Args& a, Cluster& c) {
  bool all_ok = true;
  for (std::uint32_t s = 0; s < a.shards; ++s) {
    std::vector<la::GlaView> views;
    lattice::Elem all_submitted;
    lattice::Elem all_decided;
    bool ok = true;
    for (std::uint32_t i = 0; i < a.n; ++i) {
      const std::string dir =
          a.shards > 1
              ? c.node(i).data_dir + "/shard-" + std::to_string(s)
              : c.node(i).data_dir;
      std::vector<std::string> notes;
      const Bytes blob = store::ReplicaStore::peek_latest_state(dir, &notes);
      for (const std::string& note : notes) {
        std::cout << "[nemesis] node " << i << " shard " << s
                  << " store: " << note << "\n";
      }
      la::GlaView v;
      v.id = i;
      if (blob.empty()) {
        std::cout << "[nemesis] node " << i << " shard " << s
                  << " left no durable state\n";
        ok = false;
      } else {
        try {
          const la::StateSummary sum = la::summarize_state(BytesView(blob));
          v.submitted = sum.submitted;
          for (const la::DecisionRecord& rec : sum.decisions) {
            v.decisions.push_back(rec.value);
          }
          for (const lattice::Elem& e : sum.submitted) {
            all_submitted = all_submitted.join(e);
          }
          if (!v.decisions.empty()) {
            all_decided = all_decided.join(v.decisions.back());
          }
        } catch (const CheckError& e) {
          std::cout << "[nemesis] node " << i << " shard " << s
                    << " durable state unreadable: " << e.what() << "\n";
          ok = false;
        }
      }
      views.push_back(std::move(v));
    }
    const la::GlaSpecResult res =
        la::check_gla(views, /*byz_disclosed=*/lattice::Elem(),
                      /*min_decisions=*/0);
    if (!res.ok()) {
      std::cout << "[nemesis] shard " << s
                << " spec FAILED: " << res.diagnostic << "\n";
      ok = false;
    }
    if (!all_submitted.leq(all_decided)) {
      std::cout << "[nemesis] shard " << s
                << " FAILED: submitted values missing from the merged "
                   "decided join\n  submitted: "
                << all_submitted.to_string()
                << "\n  decided:   " << all_decided.to_string() << "\n";
      ok = false;
    }
    std::cout << "[nemesis] shard " << s << " spec verdict: "
              << (ok ? "ok" : "FAILED") << "\n";
    all_ok = all_ok && ok;
  }
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  // A chaos command racing a child's exit must not kill the driver.
  ::signal(SIGPIPE, SIG_IGN);

  ::mkdir(a.workdir.c_str(), 0755);

  const std::uint32_t total_nodes =
      a.n + (a.protocol == "rsm-replica" ? a.clients : 0);
  std::vector<std::uint16_t> ports;
  for (std::uint32_t i = 0; i < total_nodes; ++i) {
    ports.push_back(pick_free_port());
  }

  Cluster cluster(a, std::move(ports));
  std::cout << "[nemesis] starting " << a.n << "-node " << a.protocol
            << " cluster (f=" << a.f << ", campaign=" << a.campaign;
  if (a.shards > 1) std::cout << ", shards=" << a.shards;
  std::cout << ") in " << a.workdir << "\n";

  // Fault timeline (node id = n marks the driver as the emitter).
  std::unique_ptr<obs::TraceWriter> faults_writer;
  if (a.trace) {
    obs::TraceWriter::Options topt;
    topt.path = a.workdir + "/faults.jsonl";
    faults_writer = std::make_unique<obs::TraceWriter>(topt);
  }
  obs::TraceWriter* const faults = faults_writer.get();

  for (std::uint32_t i = 0; i < total_nodes; ++i) cluster.spawn(i);
  sleep_ms(a.settle_ms);

  if (a.campaign == "none") {
    // Fault-free baseline: useful for observability runs that want clean
    // bound tables from a real cluster.
  } else if (a.campaign == "kill-restart") {
    run_kill_restart(a, cluster, a.kills, faults);
  } else if (a.campaign == "partition") {
    run_partition(a, cluster, faults);
  } else if (a.campaign == "loss") {
    run_loss_burst(a, cluster, faults);
  } else if (a.campaign == "delay") {
    run_delay_spike(a, cluster, faults);
  } else if (a.campaign == "mixed") {
    run_loss_burst(a, cluster, faults);
    run_kill_restart(a, cluster, a.kills, faults);
    run_partition(a, cluster, faults);
    run_delay_spike(a, cluster, faults);
  } else if (a.campaign == "region-partition") {
    run_region_partition(a, cluster, faults);
  } else if (a.campaign == "wan-brownout") {
    run_wan_brownout(a, cluster, faults);
  } else if (a.campaign == "byz-equivocate") {
    run_byz_equivocate(a, cluster, faults);
  } else if (a.campaign == "byz-replay") {
    run_byz_replay(a, cluster, a.kills, faults);
  } else if (a.campaign == "compact-churn") {
    run_compact_churn(a, cluster, a.kills + 2, faults);
  } else {
    std::cerr << "error: unknown campaign '" << a.campaign << "'\n";
    return 2;
  }

  // Heal everything and let the cluster drain to completion.
  cluster.chaos_all("heal");
  record_fault(faults, a.n, "heal");
  if (faults != nullptr) faults->flush();
  std::cout << "[nemesis] healed; draining\n";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(a.drain_ms);
  while (cluster.poll_running() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    sleep_ms(100);
  }
  // An adversary has no exit duty: it serves until killed, and its status
  // never counts toward the verdict.
  if (a.byz_id != Args::kNoByz && cluster.node(a.byz_id).running) {
    cluster.kill9(a.byz_id);
  }
  bool all_ok = true;
  for (const Node& nd : cluster.nodes()) {
    if (nd.byzantine) continue;
    if (nd.running) {
      std::cout << "[nemesis] node " << nd.id
                << " did not finish before the drain deadline\n";
      all_ok = false;
    } else if (!nd.exited_ok) {
      all_ok = false;
    }
  }

  // Read the surviving durable state and run the spec checkers. The
  // sharded RSM path reads per-shard subdirectories and runs one GLA spec
  // verdict per shard.
  if (a.protocol == "rsm-replica") {
    all_ok = check_sharded_rsm(a, cluster) && all_ok;
  } else {
    CheckInput in;
    in.summaries.resize(a.n);
    for (std::uint32_t i = 0; i < a.n; ++i) {
      if (i == a.byz_id) continue;  // adversary: no durable state by design
      std::vector<std::string> notes;
      const Bytes blob = store::ReplicaStore::peek_latest_state(
          cluster.node(i).data_dir, &notes);
      for (const std::string& note : notes) {
        std::cout << "[nemesis] node " << i << " store: " << note << "\n";
      }
      if (blob.empty()) {
        std::cout << "[nemesis] node " << i << " left no durable state\n";
        all_ok = false;
        continue;
      }
      try {
        in.summaries[i] = la::summarize_state(BytesView(blob));
      } catch (const CheckError& e) {
        std::cout << "[nemesis] node " << i
                  << " durable state unreadable: " << e.what() << "\n";
        all_ok = false;
      }
    }
    if (all_ok) {
      all_ok = (a.protocol == "sbs") ? check_one_shot(a, in)
                                     : check_generalized(a, in);
    }
  }

  std::cout << (all_ok ? "[nemesis] campaign PASSED"
                       : "[nemesis] campaign FAILED")
            << "\n";
  return all_ok ? 0 : 1;
}
