// bgla_node — run ONE protocol endpoint as a real OS process over TCP.
//
// The node loads a topology file (one endpoint per line: "<id> <host>
// <port>", '#' starts a comment), builds a net::SocketTransport for its
// own id, and runs the selected protocol endpoint against it. Every node
// of a deployment must use the same topology file, --n, --f and --seed
// (the seed derives the frame- and protocol-HMAC key material that makes
// the channels authenticated).
//
// Replica modes (--protocol):
//   wts | sbs          one-shot LA: proposes --value, prints the decision
//   gwts | gsbs        generalized LA: submits --submissions values, waits
//                      for --decisions rounds
//   faleiro-la         crash-stop GLA baseline (n >= 2f+1, no signatures)
//   rsm-replica        §7.2 RSM replica; serves the client ids that follow
//                      the n replica ids in the topology
//
// Client mode (--client): the node occupies a topology id >= --n and
// drives the replicas instead of participating:
//   with rsm-replica   runs the Algorithm 5/6 RSM client for --ops
//                      alternating update/read operations
//   with gwts/gsbs/faleiro-la
//                      injects --submissions SubmitMsg values, then lingers
//
// A 7-process SbS cluster on localhost (run each line in its own shell,
// kill any one replica mid-run — f=1 — and the rest still decide):
//   for i in $(seq 0 6); do echo "$i 127.0.0.1 $((9100+i))"; done > topo.txt
//   bgla_node --topology topo.txt --id $I --protocol sbs --n 7 --f 1
//     (each replica proposes a distinct default value of 100+id)
//
// Crash recovery (--data-dir): the node opens a store::ReplicaStore in the
// given directory, re-imports any surviving state before the transport
// starts (the process then rejoins via the catch-up exchange), and logs a
// full state export after every durable protocol transition. kill -9 at
// any point is recoverable: restart the same command line and the replica
// resumes from disk. A data dir with quarantined corruption exits loudly
// with status 3.
//
// Link shaping (--link-matrix): loads per-peer LinkPolicy base rules
// (net/link_policy.h grammar) so a loopback cluster emulates a WAN
// deployment; `heal` restores this matrix, not a neutral network.
//
// Chaos control (--chaos-stdin): a driver (tools/bgla_nemesis) can steer
// fault injection at runtime by writing lines to stdin:
//   loss <rate> | delay <ms> | block-to <id> | unblock-to <id>
//   block-from <id> | unblock-from <id> | heal
//   link <peer|*> <spec>   (spec: "lat=25,jitter=10,loss=0.02,..." | off)
//
// Byzantine mode (--byzantine <strategy>, gsbs only): instead of a correct
// replica, the node runs an adversary from src/byz/strategies.h over the
// same authenticated transport:
//   equivocate     GsbsPartitionEquivocator (conflicting round-bound
//                  batches to each half of the group, yes-machine acks)
//   stale-replay   GsbsStaleCertReplayer (replays its oldest DECIDED
//                  certificate at every type-70 catch-up request)
//
// Observability: --trace-file writes the JSONL protocol trace (one file
// per node; merge them with tools/bgla_trace), --trace-spans additionally
// emits the schema-v2 causal phase spans (submit/enqueue/round/quorum/
// ack/apply/...; analyze with `bgla_trace --critical-path`),
// --metrics-json writes a final metrics snapshot, --metrics-port serves
// live introspection on 127.0.0.1 (/metrics Prometheus text, /healthz
// progress + peer liveness, /spans the recent-span flight recorder), and
// SIGUSR1 dumps the Prometheus text to stderr at any point.
//
// Sharding (--shards S, rsm-replica only): the node keeps ONE transport
// identity but mounts S independent replica stacks behind a shard::Router.
// Replica-to-replica frames ride in ShardEnvelopeMsg (shard id in the wire
// header); clients stay shard-oblivious — the Router hashes their commands
// to shards and answers reads from the merged cross-shard frontier. Every
// replica of a deployment must use the same --shards. Durable state lives
// in per-shard subdirectories <data-dir>/shard-<k>, and --trace-file adds
// per-shard files <trace-file>.shard<k> next to the node's own. --shards 1
// is the unsharded node, byte-identical behavior.
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "byz/strategies.h"
#include "la/faleiro_la.h"
#include "la/gsbs.h"
#include "la/gwts.h"
#include "la/sbs.h"
#include "la/wts.h"
#include "lattice/set_elem.h"
#include "net/delta_transport.h"
#include "net/socket_transport.h"
#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/instrument.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "rsm/client.h"
#include "rsm/replica.h"
#include "shard/router.h"
#include "store/replica_store.h"
#include "util/flags.h"

using namespace bgla;
using lattice::Item;
using lattice::make_set;

namespace {

struct Args {
  std::string topology;
  std::string protocol = "wts";
  std::uint32_t id = 0;
  std::uint32_t n = 0;  // 0 = every topology entry is a replica
  std::uint32_t f = 1;
  std::uint64_t seed = 42;
  std::uint64_t value = 0;  // 0 = 100 + id
  std::uint32_t submissions = 1;
  std::uint32_t decisions = 1;
  std::uint32_t ops = 4;
  bool client = false;
  std::uint32_t run_ms = 30000;
  std::uint32_t linger_ms = 2000;
  double loss_rate = 0.0;
  std::uint32_t batch = 0;
  std::uint32_t queue = 0;
  std::uint64_t flush_age = 0;
  bool pipeline = false;
  std::string data_dir;
  bool delta_wire = false;
  std::uint64_t compact_wal_bytes = 0;
  std::uint32_t fold_keep = 1;
  std::uint32_t shards = 1;
  std::string link_matrix;
  std::uint32_t retransmit_ms = 0;  // 0 = transport default
  std::string byzantine;
  bool chaos_stdin = false;
  std::string trace_file;
  bool trace_spans = false;
  std::string metrics_json;
  std::uint32_t metrics_port = 0;
};

Args parse(int argc, char** argv) {
  Args a;
  util::FlagSet flags("bgla_node");
  flags.add_string("topology", &a.topology,
                   "endpoint file: one '<id> <host> <port>' per line");
  flags.add_string("protocol", &a.protocol,
                   "wts | sbs | gwts | gsbs | faleiro-la | rsm-replica");
  flags.add_u32("id", &a.id, "this node's process id (a topology entry)");
  flags.add_u32("n", &a.n,
                "protocol replicas, ids 0..n-1 (default: all entries)");
  flags.add_u32("f", &a.f, "resilience parameter");
  flags.add_u64("seed", &a.seed, "deployment key seed (same on all nodes)");
  flags.add_u64("value", &a.value, "proposal payload (default: 100+id)");
  flags.add_u32("submissions", &a.submissions,
                "values submitted (generalized protocols / client)");
  flags.add_u32("decisions", &a.decisions,
                "decided rounds to wait for (generalized protocols)");
  flags.add_u32("ops", &a.ops, "RSM client operations");
  flags.add_bool("client", &a.client,
                 "drive the replicas instead of being one (id >= n)");
  flags.add_u32("run-ms", &a.run_ms, "overall deadline");
  flags.add_u32("linger-ms", &a.linger_ms,
                "serve acks/retransmits after finishing, before exit");
  flags.add_double("loss-rate", &a.loss_rate,
                   "injected outgoing frame loss (testing)");
  flags.add_u32("batch", &a.batch,
                "values per round batch (0 = all pending)");
  flags.add_u32("queue", &a.queue,
                "ingress queue bound; full queues nack (0 = unbounded)");
  flags.add_u64("flush-age", &a.flush_age,
                "hold a short batch until its oldest value is this old");
  flags.add_bool("pipeline", &a.pipeline,
                 "pre-disclose the next round's batch (gwts/gsbs)");
  flags.add_string("data-dir", &a.data_dir,
                   "durable state directory (enables crash recovery)");
  flags.add_bool("delta-wire", &a.delta_wire,
                 "delta-encode proposals/acks against each peer's "
                 "acked frontier (full-state fallback on rejoin)");
  flags.add_u64("compact-wal-bytes", &a.compact_wal_bytes,
                "fold the WAL into the snapshot once it holds this many "
                "payload bytes, compacting the decided prefix first "
                "(0 = count-based folds only)");
  flags.add_u32("fold-keep", &a.fold_keep,
                "decision records kept live through a decided-prefix "
                "compaction (newest N + the running join)");
  flags.add_u32("shards", &a.shards,
                "concurrent GLA shards per rsm-replica (1 = unsharded)");
  flags.add_string("link-matrix", &a.link_matrix,
                   "per-peer base LinkPolicy rules file (WAN emulation)");
  flags.add_u32("retransmit-ms", &a.retransmit_ms,
                "unacked-frame resend period (0 = default; raise on "
                "high-latency links)");
  flags.add_string("byzantine", &a.byzantine,
                   "run an adversary instead of a correct replica: "
                   "equivocate | stale-replay (gsbs only)");
  flags.add_bool("chaos-stdin", &a.chaos_stdin,
                 "accept fault-injection commands on stdin");
  flags.add_string("trace-file", &a.trace_file,
                   "write the JSONL protocol trace to this file");
  flags.add_bool("trace-spans", &a.trace_spans,
                 "emit causal per-command phase spans (schema v2) into the "
                 "trace and the /spans flight recorder");
  flags.add_string("metrics-json", &a.metrics_json,
                   "write a final metrics snapshot (JSON) to this file");
  flags.add_u32("metrics-port", &a.metrics_port,
                "serve Prometheus text on 127.0.0.1:<port> (0 = off)");
  flags.parse_or_exit(argc, argv);
  if (a.topology.empty()) flags.fail("--topology is required");
  if (!a.data_dir.empty() && a.client) {
    flags.fail("--data-dir applies to replicas, not --client mode");
  }
  if (a.shards == 0) flags.fail("--shards must be at least 1");
  if (a.shards > 1 && (a.client || a.protocol != "rsm-replica")) {
    flags.fail("--shards > 1 applies to rsm-replica replicas only");
  }
  if (!a.byzantine.empty()) {
    if (a.protocol != "gsbs") {
      flags.fail("--byzantine strategies target the gsbs protocol");
    }
    if (a.client || !a.data_dir.empty() || a.shards > 1) {
      flags.fail("--byzantine excludes --client/--data-dir/--shards");
    }
  }
  return a;
}

/// Parses the topology file into peer addresses (sorted by id).
std::vector<net::PeerAddr> load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open topology file '" << path << "'\n";
    std::exit(2);
  }
  std::vector<net::PeerAddr> peers;
  std::set<std::uint32_t> ids;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint32_t id = 0;
    std::string host;
    std::uint32_t port = 0;
    if (!(ls >> id)) continue;  // blank / comment-only line
    std::string trailing;
    if (!(ls >> host >> port) || port > 65535 || (ls >> trailing)) {
      std::cerr << "error: " << path << ":" << lineno
                << ": expected '<id> <host> <port>'\n";
      std::exit(2);
    }
    if (!ids.insert(id).second) {
      std::cerr << "error: " << path << ":" << lineno << ": duplicate id "
                << id << "\n";
      std::exit(2);
    }
    peers.push_back(net::PeerAddr{id, host,
                                  static_cast<std::uint16_t>(port)});
  }
  if (peers.empty()) {
    std::cerr << "error: topology file '" << path << "' has no entries\n";
    std::exit(2);
  }
  std::sort(peers.begin(), peers.end(),
            [](const net::PeerAddr& x, const net::PeerAddr& y) {
              return x.id < y.id;
            });
  return peers;
}

/// LA client: injects SubmitMsg values into every replica, then idles.
class SubmitClient : public net::Endpoint {
 public:
  SubmitClient(net::Transport& net, ProcessId id, std::uint32_t n,
               std::uint32_t submissions, std::uint64_t base)
      : net::Endpoint(net, id), n_(n), submissions_(submissions),
        base_(base) {}

  void on_start() override {
    for (std::uint32_t k = 0; k < submissions_; ++k) {
      for (ProcessId r = 0; r < n_; ++r) {
        send(r, std::make_shared<la::SubmitMsg>(
                    make_set({Item{id(), base_ + k, 1}})));
      }
    }
    done_ = true;
  }
  void on_message(ProcessId, const sim::MessagePtr&) override {}
  bool done() const { return done_; }

 private:
  std::uint32_t n_;
  std::uint32_t submissions_;
  std::uint64_t base_;
  bool done_ = false;
};

void print_decision(const la::DecisionRecord& rec) {
  std::cout << "decided round=" << rec.round << " value="
            << rec.value.to_string() << "\n";
}

/// Applies one chaos command line; unknown commands are reported, never
/// fatal (the driver may be newer than the node).
void apply_chaos_line(net::SocketTransport& net, const std::string& line) {
  std::istringstream ls(line);
  std::string cmd;
  if (!(ls >> cmd) || cmd.empty() || cmd[0] == '#') return;
  std::uint32_t id = 0;
  double rate = 0.0;
  std::uint32_t ms = 0;
  std::string peer_tok, spec;
  if (cmd == "loss" && ls >> rate) {
    net.set_loss_rate(rate);
  } else if (cmd == "delay" && ls >> ms) {
    net.set_send_delay_ms(ms);
  } else if (cmd == "link" && ls >> peer_tok >> spec) {
    // Replace the CURRENT policy of one outgoing link (or all of them);
    // `heal` restores the --link-matrix base, not a neutral network.
    net::LinkPolicy p;
    if (!net::parse_link_policy(spec, &p)) {
      std::cerr << "chaos: bad link spec '" << spec << "'\n";
    } else if (peer_tok == "*") {
      net.set_all_links(p);
    } else {
      std::uint32_t peer = 0;
      std::istringstream ps(peer_tok);
      bool applied = false;
      if (ps >> peer) {
        try {
          net.set_link_policy(peer, p);
          applied = true;
        } catch (const CheckError&) {
        }
      }
      // Driver mistakes must never take the node down.
      if (!applied) std::cerr << "chaos: bad link peer '" << peer_tok << "'\n";
    }
  } else if (cmd == "block-to" && ls >> id) {
    net.set_block_outgoing(id, true);
  } else if (cmd == "unblock-to" && ls >> id) {
    net.set_block_outgoing(id, false);
  } else if (cmd == "block-from" && ls >> id) {
    net.set_block_incoming(id, true);
  } else if (cmd == "unblock-from" && ls >> id) {
    net.set_block_incoming(id, false);
  } else if (cmd == "heal") {
    net.heal_links();
    for (std::uint32_t p = 0; p < 64; ++p) {
      net.set_block_outgoing(p, false);
      net.set_block_incoming(p, false);
    }
  } else {
    std::cerr << "chaos: ignoring '" << line << "'\n";
  }
}

/// Reads chaos commands from stdin until EOF or shutdown. Polls so the
/// thread can be joined even if the driver never closes the pipe.
void chaos_stdin_loop(net::SocketTransport& net,
                      const std::atomic<bool>& alive) {
  std::string buf;
  char tmp[256];
  while (alive.load()) {
    pollfd pfd{0, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr <= 0) continue;
    const ssize_t n = ::read(0, tmp, sizeof(tmp));
    if (n <= 0) break;  // EOF: the driver closed our stdin
    buf.append(tmp, static_cast<std::size_t>(n));
    std::size_t nl = 0;
    while ((nl = buf.find('\n')) != std::string::npos) {
      apply_chaos_line(net, buf.substr(0, nl));
      buf.erase(0, nl + 1);
    }
  }
}

volatile std::sig_atomic_t g_dump_metrics = 0;
void on_sigusr1(int) { g_dump_metrics = 1; }

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  const std::vector<net::PeerAddr> peers = load_topology(a.topology);

  const std::uint32_t num_endpoints = peers.back().id + 1;
  const std::uint32_t n =
      a.n != 0 ? a.n : static_cast<std::uint32_t>(peers.size());
  const std::uint64_t value = a.value != 0 ? a.value : 100 + a.id;

  // Durable state: open (and repair) the data dir before the transport
  // exists, so the bumped incarnation can ride in connection HELLOs. A
  // sharded node keeps one store per shard under <data-dir>/shard-<k>; its
  // transport incarnation is the max over them, so any shard's restart
  // bumps the HELLO.
  std::unique_ptr<store::ReplicaStore> store;
  std::vector<std::unique_ptr<store::ReplicaStore>> shard_stores;
  std::uint64_t incarnation = 0;
  if (!a.data_dir.empty()) {
    const auto open_store =
        [](const std::string& dir) -> std::unique_ptr<store::ReplicaStore> {
      std::unique_ptr<store::ReplicaStore> s;
      try {
        s = std::make_unique<store::ReplicaStore>(dir);
      } catch (const CheckError& e) {
        std::cerr << "error: cannot open data dir '" << dir
                  << "': " << e.what() << "\n";
        return nullptr;
      }
      for (const std::string& note : s->notes()) {
        std::cerr << "store: " << note << "\n";
      }
      if (!s->clean()) {
        std::cerr << "error: data dir '" << dir
                  << "' has quarantined corruption; refusing to run\n";
        return nullptr;
      }
      return s;
    };
    if (a.shards > 1) {
      if (::mkdir(a.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::cerr << "error: cannot create data dir '" << a.data_dir
                  << "'\n";
        return 3;
      }
      for (std::uint32_t s = 0; s < a.shards; ++s) {
        auto sub = open_store(a.data_dir + "/shard-" + std::to_string(s));
        if (sub == nullptr) return 3;
        incarnation = std::max(incarnation, sub->incarnation());
        shard_stores.push_back(std::move(sub));
      }
    } else {
      store = open_store(a.data_dir);
      if (store == nullptr) return 3;
      incarnation = store->incarnation();
    }
    if (a.compact_wal_bytes != 0) {
      if (store != nullptr) store->set_max_wal_bytes(a.compact_wal_bytes);
      for (auto& s : shard_stores) s->set_max_wal_bytes(a.compact_wal_bytes);
    }
  }

  // Observability sinks. The registry always exists (its cost without a
  // reader is a few cached atomics); the trace writer only with a file.
  obs::Registry registry;
  obs::FlightRecorder flight;
  std::unique_ptr<obs::TraceWriter> trace;
  if (!a.trace_file.empty()) {
    obs::TraceWriter::Options topt;
    topt.path = a.trace_file;
    topt.incarnation = incarnation;
    // A restart re-using the path (per-incarnation campaigns) rolls the
    // previous run's lines aside instead of truncating them; ring
    // overflows surface in the scrapeable dropped counter.
    topt.rollover = true;
    topt.dropped_counter = &registry.counter("bgla_trace_dropped_total");
    trace = std::make_unique<obs::TraceWriter>(topt);
  }
  obs::Instrument instr(&registry, trace.get());
  if (a.trace_spans) {
    instr.enable_spans(a.id);
    instr.set_flight_recorder(&flight);
  }
  // Sharded nodes get one trace file and instrument per shard, so the
  // offline checker (tools/bgla_trace) can verify each shard's GLA spec
  // independently — the shard index rides in the ".shard<k>" file suffix.
  std::vector<std::unique_ptr<obs::TraceWriter>> shard_traces;
  std::vector<std::unique_ptr<obs::Instrument>> shard_instrs;
  for (std::uint32_t s = 0; s < a.shards && a.shards > 1; ++s) {
    obs::TraceWriter* st = nullptr;
    if (!a.trace_file.empty()) {
      obs::TraceWriter::Options topt;
      topt.path = a.trace_file + ".shard" + std::to_string(s);
      topt.incarnation =
          s < shard_stores.size() ? shard_stores[s]->incarnation() : 0;
      topt.rollover = true;
      topt.dropped_counter = &registry.counter("bgla_trace_dropped_total");
      shard_traces.push_back(std::make_unique<obs::TraceWriter>(topt));
      st = shard_traces.back().get();
    }
    shard_instrs.push_back(std::make_unique<obs::Instrument>(&registry, st));
    if (a.trace_spans) {
      // Each instrument seeds its own span-id namespace; shard s borrows a
      // synthetic node id so its trace ids never collide with the node's
      // own or a sibling shard's (real ids are < 64, see the chaos masks).
      shard_instrs.back()->enable_spans(a.id + (s + 1) * 1024);
      shard_instrs.back()->set_flight_recorder(&flight);
    }
  }
  std::signal(SIGUSR1, &on_sigusr1);

  net::SocketConfig scfg;
  scfg.self = a.id;
  scfg.peers = peers;
  scfg.num_processes = num_endpoints;
  scfg.auth_seed = a.seed;
  scfg.loss_rate = a.loss_rate;
  scfg.incarnation = incarnation;
  if (a.retransmit_ms != 0) scfg.retransmit_every_ms = a.retransmit_ms;
  if (!a.link_matrix.empty()) {
    std::string err;
    if (!net::load_link_matrix(a.link_matrix, &scfg.link_matrix, &err)) {
      std::cerr << "error: bad link matrix '" << a.link_matrix
                << "': " << err << "\n";
      return 2;
    }
  }
  net::SocketTransport net(scfg);
  net.set_observability(&registry, trace.get());
  net.set_instrument(&instr);  // retransmit spans when --trace-spans

  // Delta wire layer: endpoints attach to the decorator instead of the
  // raw transport, so proposals/acks go out as deltas against each
  // peer's acked frontier. A peer restart (higher HELLO incarnation)
  // re-baselines that peer — its next messages fall back to full state.
  // Declared after `net` so endpoints detach from it before it detaches
  // its proxies from `net`.
  std::optional<net::DeltaTransport> delta;
  if (a.delta_wire) {
    net::DeltaTransport::Options dopts;
    dopts.enabled = true;
    dopts.instrument = &instr;
    delta.emplace(net, dopts);
    net.set_peer_reset_hook(
        [&delta](ProcessId peer) { delta->reset_peer(peer); });
  }
  net::Transport& wire_net =
      delta ? static_cast<net::Transport&>(*delta)
            : static_cast<net::Transport&>(net);
  net.bind_and_listen();

  la::LaConfig cfg;
  cfg.n = n;
  cfg.f = a.f;
  cfg.batch.max_batch = a.batch;
  cfg.batch.max_queue = a.queue;
  cfg.batch.flush_age = a.flush_age;
  cfg.batch.pipeline = a.pipeline;

  // Protocol-level signature keys: same derivation on every node, distinct
  // from the transport's frame keys.
  const crypto::SignatureAuthority auth(n, a.seed ^ 0xabcdef);

  // `done` is polled under dispatch_lock(); `report` runs after stop().
  // The shard replicas are declared after `endpoint` on purpose: they are
  // attached to ShardChannels the Router owns, so they must detach (destruct)
  // before the Router does.
  std::unique_ptr<net::Endpoint> endpoint;
  std::vector<std::unique_ptr<rsm::Replica>> shard_replicas;
  std::function<bool()> done;
  std::function<bool()> report;
  bool completion_expected = true;

  // Recovery wiring, shared by every replica protocol: import the latest
  // intact durable record (full-state WAL: last record wins, falling back
  // to the snapshot), then hook persistence for all later transitions.
  // Must run before any submit() call and before net.start().
  const auto steady_us = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  const auto wire_store_at = [&registry, &a, &steady_us](
                                 auto* p, store::ReplicaStore* sp,
                                 obs::Instrument* ip) -> bool {
    p->set_instrument(ip);
    if (sp == nullptr) return true;
    if (sp->found()) {
      const Bytes& latest = sp->wal_records().empty()
                                ? sp->snapshot()
                                : sp->wal_records().back();
      if (!latest.empty()) {
        const std::uint64_t t0 = steady_us();
        try {
          Decoder dec{BytesView(latest)};
          p->import_state(dec);
        } catch (const CheckError& e) {
          std::cerr << "error: corrupt durable state in '" << sp->dir()
                    << "': " << e.what() << "\n";
          return false;
        }
        registry.histogram("bgla_store_replay_latency_us")
            .observe(steady_us() - t0);
        std::cout << "recovered state from " << sp->dir()
                  << " (incarnation " << sp->incarnation() << ")\n";
      }
    }
    p->set_persist_hook([p, sp, ip, &registry, &a, &steady_us] {
      Encoder e;
      p->export_state(e);
      const std::uint64_t t0 = steady_us();
      // When the store is about to fold anyway, compact the decided
      // prefix first (generalized protocols only) so the snapshot — and
      // every later WAL record — carries the folded state, not the full
      // decision history.
      if constexpr (requires { p->compact_decided_prefix(std::size_t{1}); }) {
        if (sp->due_for_compact(e.bytes().size())) {
          const std::size_t folded = p->compact_decided_prefix(a.fold_keep);
          if (folded > 0) {
            registry.counter("bgla_store_prefix_folds_total").inc(folded);
            Encoder ce;
            p->export_state(ce);
            sp->compact(BytesView(ce.bytes()));
            ip->on_persist(a.id, ce.bytes().size(), steady_us() - t0);
            return;
          }
        }
      }
      sp->persist(BytesView(e.bytes()));
      ip->on_persist(a.id, e.bytes().size(), steady_us() - t0);
    });
    return true;
  };
  const auto wire_store = [&](auto* p) -> bool {
    return wire_store_at(p, store.get(), &instr);
  };

  if (!a.byzantine.empty()) {
    if (a.id >= n) {
      std::cerr << "error: --byzantine requires a replica id < n\n";
      return 2;
    }
    if (a.byzantine == "equivocate") {
      auto* p = new byz::GsbsPartitionEquivocator(
          wire_net, a.id, cfg, auth, value, byz::kGsbsEquivocatorRounds);
      endpoint.reset(p);
      report = [&a] {
        std::cout << "byzantine " << a.byzantine << " node served its term\n";
        return true;
      };
    } else if (a.byzantine == "stale-replay") {
      auto* p = new byz::GsbsStaleCertReplayer(wire_net, a.id, cfg, auth);
      endpoint.reset(p);
      report = [p, &a] {
        std::cout << "byzantine " << a.byzantine << " node served its term"
                  << (p->has_stale_cert()
                          ? " (replayed cert round " +
                                std::to_string(p->stale_round()) + ")"
                          : " (no certificate ever captured)")
                  << "\n";
        return true;
      };
    } else {
      std::cerr << "error: unknown byzantine strategy '" << a.byzantine
                << "'\n";
      return 2;
    }
    // An adversary never "finishes"; it serves until the deadline.
    completion_expected = false;
    done = [] { return false; };
  } else if (a.client) {
    if (a.id < n) {
      std::cerr << "error: --client requires an id >= n (" << n << ")\n";
      return 2;
    }
    if (a.protocol == "rsm-replica") {
      std::vector<rsm::Op> script;
      for (std::uint32_t k = 0; k < a.ops; ++k) {
        script.push_back(k % 2 == 0 ? rsm::Op::update(value + k)
                                    : rsm::Op::read());
      }
      auto* c = new rsm::Client(wire_net, a.id, n, a.f, std::move(script));
      endpoint.reset(c);
      done = [c] { return c->done(); };
      report = [c, &a] {
        std::uint32_t completed = 0;
        for (const auto& rec : c->history()) completed += rec.completed;
        std::cout << "client ops completed: " << completed << "/" << a.ops
                  << "\n";
        return completed == a.ops;
      };
    } else {
      auto* c = new SubmitClient(wire_net, a.id, n, a.submissions, value);
      endpoint.reset(c);
      done = [c] { return c->done(); };
      report = [c, &a] {
        std::cout << "client submitted " << a.submissions
                  << " value(s) to every replica\n";
        return c->done();
      };
    }
  } else if (a.protocol == "wts" || a.protocol == "sbs") {
    const lattice::Elem proposal = make_set({Item{a.id, value, 0}});
    if (a.protocol == "wts") {
      auto* p = new la::WtsProcess(wire_net, a.id, cfg, proposal);
      endpoint.reset(p);
      if (!wire_store(p)) return 3;
      done = [p] { return p->decided(); };
      report = [p] {
        if (!p->decided()) return false;
        print_decision(p->decision());
        return true;
      };
    } else {
      auto* p = new la::SbsProcess(wire_net, a.id, cfg, auth, proposal);
      endpoint.reset(p);
      if (!wire_store(p)) return 3;
      done = [p] { return p->decided(); };
      report = [p] {
        if (!p->decided()) return false;
        print_decision(p->decision());
        return true;
      };
    }
  } else if (a.protocol == "gwts" || a.protocol == "gsbs" ||
             a.protocol == "faleiro-la") {
    const std::vector<la::DecisionRecord>* decs = nullptr;
    if (a.protocol == "gwts") {
      auto* p = new la::GwtsProcess(wire_net, a.id, cfg);
      endpoint.reset(p);
      if (!wire_store(p)) return 3;
      for (std::uint32_t k = 0; k < a.submissions; ++k) {
        p->submit(make_set({Item{a.id, value + k, 1}}));
      }
      decs = &p->decisions();
    } else if (a.protocol == "gsbs") {
      auto* p = new la::GsbsProcess(wire_net, a.id, cfg, auth);
      endpoint.reset(p);
      if (!wire_store(p)) return 3;
      for (std::uint32_t k = 0; k < a.submissions; ++k) {
        p->submit(make_set({Item{a.id, value + k, 1}}));
      }
      decs = &p->decisions();
    } else {
      la::CrashConfig ccfg;
      ccfg.n = n;
      ccfg.f = a.f;
      ccfg.batch = cfg.batch;
      auto* p = new la::FaleiroProcess(wire_net, a.id, ccfg);
      endpoint.reset(p);
      if (!wire_store(p)) return 3;
      for (std::uint32_t k = 0; k < a.submissions; ++k) {
        p->submit(make_set({Item{a.id, value + k, 1}}));
      }
      decs = &p->decisions();
    }
    // A node with nothing to submit is a pure acceptor: it serves the
    // others until the deadline, and that is success.
    completion_expected = a.submissions > 0;
    const std::uint32_t target = a.decisions;
    done = [decs, target] { return decs->size() >= target; };
    report = [decs, target] {
      for (const auto& rec : *decs) print_decision(rec);
      return decs->size() >= target;
    };
  } else if (a.protocol == "rsm-replica") {
    if (num_endpoints <= n) {
      std::cerr << "error: rsm-replica needs client ids >= n in the "
                   "topology\n";
      return 2;
    }
    if (a.shards > 1) {
      shard::Router::Config rcfg;
      rcfg.num_shards = a.shards;
      rcfg.num_replicas = n;
      rcfg.registry = &registry;
      auto* r = new shard::Router(wire_net, a.id, rcfg);
      endpoint.reset(r);
      for (std::uint32_t s = 0; s < a.shards; ++s) {
        auto p = std::make_unique<rsm::Replica>(
            r->shard_transport(s), a.id, cfg, /*client_base=*/n,
            /*num_clients=*/num_endpoints - n);
        store::ReplicaStore* sp =
            s < shard_stores.size() ? shard_stores[s].get() : nullptr;
        if (!wire_store_at(p.get(), sp, shard_instrs[s].get())) return 3;
        shard_replicas.push_back(std::move(p));
      }
      completion_expected = false;
      done = [] { return false; };
      report = [&shard_replicas, r] {
        for (std::size_t s = 0; s < shard_replicas.size(); ++s) {
          std::cout << "shard " << s << " replica state: "
                    << shard_replicas[s]->state().to_string() << "\n";
        }
        std::cout << "merged frontier: "
                  << r->frontier().merged().to_string() << "\n";
        return true;
      };
    } else {
      auto* p = new rsm::Replica(wire_net, a.id, cfg, /*client_base=*/n,
                                 /*num_clients=*/num_endpoints - n);
      endpoint.reset(p);
      if (!wire_store(p)) return 3;
      // A replica serves clients until the deadline; there is no local
      // notion of "finished".
      completion_expected = false;
      done = [] { return false; };
      report = [p] {
        std::cout << "replica state: " << p->state().to_string() << "\n";
        return true;
      };
    }
  } else {
    std::cerr << "error: unknown protocol '" << a.protocol << "'\n";
    return 2;
  }

  endpoint->set_instrument(&instr);  // clients too (replicas: re-set, same)

  std::unique_ptr<obs::MetricsHttpServer> metrics_server;
  if (a.metrics_port != 0) {
    metrics_server = std::make_unique<obs::MetricsHttpServer>(
        &registry, static_cast<std::uint16_t>(a.metrics_port));
    // /healthz: frontier progress (decides / frontier weights) plus peer
    // liveness (per-peer frames received). Runs on the server thread over
    // a registry snapshot, so it never touches protocol state.
    metrics_server->set_health([&registry, &a] {
      const obs::Snapshot snap = registry.snapshot();
      const auto counter = [&snap](const std::string& name) {
        const auto it = snap.counters.find(name);
        return it == snap.counters.end() ? 0ull : it->second;
      };
      std::ostringstream os;
      os << "ok node=" << a.id << " protocol=" << a.protocol
         << " decided=" << counter("bgla_proto_decides_total")
         << " submitted=" << counter("bgla_proto_submitted_values_total")
         << " rejoins=" << counter("bgla_proto_rejoins_total") << "\n";
      for (const auto& [name, v] : snap.gauges) {
        if (name.rfind("bgla_shard_frontier_weight", 0) == 0) {
          os << "frontier " << name << " " << v << "\n";
        }
      }
      for (const auto& [name, v] : snap.counters) {
        constexpr const char* kRecv = "bgla_net_frames_recv_total{peer=";
        if (name.rfind(kRecv, 0) == 0) {
          os << "peer " << name.substr(std::string(kRecv).size(),
                                       name.size() -
                                           std::string(kRecv).size() - 1)
             << (v > 0 ? " alive " : " silent ") << v << "\n";
        }
      }
      return os.str();
    });
    if (a.trace_spans) metrics_server->set_flight_recorder(&flight);
    std::cout << "metrics on http://127.0.0.1:" << metrics_server->port()
              << "/metrics (/healthz, /spans)\n";
  }

  std::cout << "node " << a.id << " (" << a.protocol
            << (a.client ? ", client" : "") << ") n=" << n << " f=" << a.f;
  if (a.shards > 1) std::cout << " shards=" << a.shards;
  std::cout << " listening on port " << net.port() << "\n";

  if (trace != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kNodeStart;
    ev.node = a.id;
    trace->record(std::move(ev.with("protocol", a.protocol)
                                .with("n", n)
                                .with("f", a.f)));
  }

  net.start();

  std::atomic<bool> chaos_alive{true};
  std::thread chaos_thread;
  if (a.chaos_stdin) {
    chaos_thread = std::thread(
        [&net, &chaos_alive] { chaos_stdin_loop(net, chaos_alive); });
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(a.run_ms);
  bool finished = false;
  while (!finished && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    if (g_dump_metrics != 0) {
      g_dump_metrics = 0;
      std::cerr << registry.snapshot().to_prometheus();
    }
    auto lock = net.dispatch_lock();
    finished = done();
  }

  // Keep answering acks/retransmits so slower peers can finish too.
  if (finished || !completion_expected) {
    std::this_thread::sleep_for(std::chrono::milliseconds(a.linger_ms));
  }
  chaos_alive.store(false);
  if (chaos_thread.joinable()) chaos_thread.join();
  net.stop();

  const bool ok = report() && (finished || !completion_expected);

  if (delta) {
    const net::DeltaTransport::Stats ws = delta->stats();
    const std::uint64_t decided =
        registry.counter("bgla_proto_decides_total").value();
    if (decided > 0) {
      instr.on_bytes_per_command(
          a.id, (ws.wire_bytes_delta + ws.wire_bytes_passthrough) / decided);
    }
    std::cout << "delta wire: " << ws.msgs_delta << " delta msgs ("
              << ws.wire_bytes_delta << " B on wire, " << ws.logical_bytes
              << " B logical), " << ws.msgs_passthrough
              << " passthrough msgs, " << ws.resets_sent << " resets sent, "
              << ws.resets_received << " received\n";
  }

  // Final observability drain: PR 1 crypto counters, the summary event,
  // the JSON snapshot and the trace flush, in that order (the snapshot
  // must see the crypto gauges; the trace must see node_final).
  const crypto::CryptoCounters& cc = auth.counters();
  obs::publish_crypto(registry, cc.macs_computed, cc.verify_cache_hits,
                      cc.verify_cache_misses);
  if (trace != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kNodeFinal;
    ev.node = a.id;
    trace->record(std::move(
        ev.with("decided",
                registry.counter("bgla_proto_decides_total").value())
            .with("msgs_sent",
                  registry.counter("bgla_proto_msgs_sent_total").value())
            .with("refinements",
                  registry.counter("bgla_proto_refinements_total")
                      .value())));
    trace->flush();
    if (trace->dropped() > 0) {
      std::cerr << "trace: ring overflow dropped " << trace->dropped()
                << " event(s)\n";
    }
  }
  // Per-shard traces carry protocol events only (no node_final: the
  // registry totals it would report are node-wide, and the shard id
  // already rides in the filename the analyzer groups by).
  for (std::size_t s = 0; s < shard_traces.size(); ++s) {
    shard_traces[s]->flush();
    if (shard_traces[s]->dropped() > 0) {
      std::cerr << "trace: shard " << s << " ring overflow dropped "
                << shard_traces[s]->dropped() << " event(s)\n";
    }
  }
  if (!a.metrics_json.empty()) {
    std::ofstream out(a.metrics_json);
    if (!out) {
      std::cerr << "error: cannot write metrics to '" << a.metrics_json
                << "'\n";
    } else {
      out << registry.snapshot().to_json() << "\n";
    }
  }

  std::cout << (ok ? "node exit: ok" : "node exit: DID NOT FINISH") << "\n";
  return ok ? 0 : 1;
}
