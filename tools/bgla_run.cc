// bgla_run — command-line scenario runner.
//
// Runs any protocol of the library under any adversary/schedule/seed and
// prints the executable-spec verdict plus the run's measurements. Useful
// for exploring configurations beyond what the benches sweep, and for
// reproducing a failing test case from its (n, f, adversary, sched, seed)
// coordinates.
//
//   bgla_run --protocol wts   --n 7 --f 2 --adversary equivocator --seed 3
//   bgla_run --protocol gwts --n 10 --f 3 --adversary round-rusher
//            --decisions 6 --sched jitter
//   bgla_run --protocol rsm   --n 4 --f 1 --byz-replicas 1 --byz-client
//   bgla_run --protocol faleiro --n 3 --byz-lying-acker --sched targeted
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "harness/scenario.h"

using namespace bgla;
using harness::Adversary;
using harness::Sched;

namespace {

struct Args {
  std::string protocol = "wts";
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t byz_count = 0xffffffff;  // default: = f
  Adversary adversary = Adversary::kNone;
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint32_t decisions = 4;
  std::uint32_t submissions = 3;
  std::uint32_t clients = 2;
  std::uint32_t ops = 4;
  std::uint32_t byz_replicas = 0;
  bool byz_client = false;
  bool byz_lying_acker = false;
  std::uint32_t crashes = 0;
  bool trace = false;
  bool trace_rb = false;
  bool signed_rb = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: bgla_run [options]\n"
      "  --protocol P     wts | gwts | sbs | gsbs | faleiro | rsm\n"
      "  --n N            number of protocol processes (replicas)\n"
      "  --f F            resilience parameter\n"
      "  --byz-count K    actual adversaries instantiated (default: f)\n"
      "  --adversary A    none | mute | equivocator | invalid-value |\n"
      "                   stale-nacker | lying-acker | round-rusher | "
      "flooder\n"
      "  --sched S        fixed | uniform | targeted | jitter\n"
      "  --seed X         RNG seed (runs are fully deterministic)\n"
      "  --decisions D    GLA decision target per process (gwts/gsbs)\n"
      "  --submissions V  input values per process (gwts/gsbs/faleiro)\n"
      "  --clients C      RSM client count\n"
      "  --ops O          RSM operations per client\n"
      "  --byz-replicas R RSM fake-decider replicas\n"
      "  --byz-client     add a Byzantine RSM client\n"
      "  --byz-lying-acker  Faleiro: add the T7 lying acceptor\n"
      "  --crashes K      Faleiro: processes crashed mid-run\n"
      "  --signed-rb      use the certificate RB (signatures) in gwts\n"
      "  --trace          print every delivered message (stderr)\n"
      "  --trace-rb       include reliable-broadcast internals\n";
  std::exit(2);
}

Adversary parse_adversary(const std::string& s) {
  static const std::map<std::string, Adversary> m = {
      {"none", Adversary::kNone},
      {"mute", Adversary::kMute},
      {"equivocator", Adversary::kEquivocator},
      {"invalid-value", Adversary::kInvalidValue},
      {"stale-nacker", Adversary::kStaleNacker},
      {"lying-acker", Adversary::kLyingAcker},
      {"round-rusher", Adversary::kRoundRusher},
      {"flooder", Adversary::kFlooder},
  };
  const auto it = m.find(s);
  if (it == m.end()) usage("unknown adversary");
  return it->second;
}

Sched parse_sched(const std::string& s) {
  static const std::map<std::string, Sched> m = {
      {"fixed", Sched::kFixed},
      {"uniform", Sched::kUniform},
      {"targeted", Sched::kTargeted},
      {"jitter", Sched::kJitter},
  };
  const auto it = m.find(s);
  if (it == m.end()) usage("unknown schedule");
  return it->second;
}

Args parse(int argc, char** argv) {
  Args a;
  auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--protocol") {
      a.protocol = next(i);
    } else if (arg == "--n") {
      a.n = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--f") {
      a.f = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--byz-count") {
      a.byz_count = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--adversary") {
      a.adversary = parse_adversary(next(i));
    } else if (arg == "--sched") {
      a.sched = parse_sched(next(i));
    } else if (arg == "--seed") {
      a.seed = std::stoull(next(i));
    } else if (arg == "--decisions") {
      a.decisions = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--submissions") {
      a.submissions = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--clients") {
      a.clients = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--ops") {
      a.ops = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--byz-replicas") {
      a.byz_replicas = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--byz-client") {
      a.byz_client = true;
    } else if (arg == "--byz-lying-acker") {
      a.byz_lying_acker = true;
    } else if (arg == "--crashes") {
      a.crashes = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--signed-rb") {
      a.signed_rb = true;
    } else if (arg == "--trace") {
      a.trace = true;
    } else if (arg == "--trace-rb") {
      a.trace = true;
      a.trace_rb = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown option");
    }
  }
  if (a.byz_count == 0xffffffff) a.byz_count = a.f;
  return a;
}

void print_header(const Args& a) {
  std::cout << "protocol=" << a.protocol << " n=" << a.n << " f=" << a.f
            << " adversary=" << harness::adversary_name(a.adversary)
            << " sched=" << harness::sched_name(a.sched)
            << " seed=" << a.seed << "\n\n";
}

int verdict(bool ok) {
  std::cout << "\nverdict: " << (ok ? "OK" : "SPEC VIOLATION / INCOMPLETE")
            << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  print_header(a);

  if (a.protocol == "wts") {
    harness::WtsScenario sc;
    sc.n = a.n;
    sc.f = a.f;
    sc.byz_count = a.byz_count;
    sc.adversary = a.adversary;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    const auto r = harness::run_wts(sc);
    std::cout << "completed:        " << (r.completed ? "yes" : "NO")
              << "\nspec:             "
              << (r.spec.ok() ? "ok" : r.spec.diagnostic)
              << "\nmax depth:        " << r.max_depth << " (2f+5 = "
              << 2 * a.f + 5 << ", 3f+5 = " << 3 * a.f + 5 << ")"
              << "\nmean depth:       " << r.mean_depth
              << "\nmax refinements:  " << r.max_refinements << " (f = "
              << a.f << ")"
              << "\nmsgs/proc (max):  " << r.max_msgs_per_correct
              << "\nbytes/proc (max): " << r.max_bytes_per_correct
              << "\ntotal messages:   " << r.total_msgs
              << "\nend time:         " << r.end_time << "\n";
    return verdict(r.completed && r.spec.ok());
  }
  if (a.protocol == "gwts" || a.protocol == "gsbs") {
    auto print = [&](const auto& r) {
      std::cout << "completed:        " << (r.completed ? "yes" : "NO")
                << "\nspec:             "
                << (r.spec.ok() ? "ok" : r.spec.diagnostic)
                << "\ntotal decisions:  " << r.total_decisions
                << "\nmsgs/decision:    " << r.msgs_per_decision_per_proposer
                << "\nmax round refines:" << r.max_round_refinements
                << "\ntotal messages:   " << r.total_msgs
                << "\nend time:         " << r.end_time << "\n";
      return verdict(r.completed && r.spec.ok());
    };
    if (a.protocol == "gwts") {
      harness::GwtsScenario sc;
      sc.n = a.n;
      sc.f = a.f;
      sc.byz_count = a.byz_count;
      sc.adversary = a.adversary;
      sc.sched = a.sched;
      sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
      sc.target_decisions = a.decisions;
      sc.submissions_per_proc = a.submissions;
      sc.signed_rb = a.signed_rb;
      return print(harness::run_gwts(sc));
    }
    harness::GsbsScenario sc;
    sc.n = a.n;
    sc.f = a.f;
    sc.byz_count = a.byz_count;
    sc.adversary = a.adversary;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    sc.target_decisions = a.decisions;
    sc.submissions_per_proc = a.submissions;
    return print(harness::run_gsbs(sc));
  }
  if (a.protocol == "sbs") {
    harness::SbsScenario sc;
    sc.n = a.n;
    sc.f = a.f;
    sc.byz_count = a.byz_count;
    sc.adversary = a.adversary;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    const auto r = harness::run_sbs(sc);
    std::cout << "completed:        " << (r.completed ? "yes" : "NO")
              << "\nspec:             "
              << (r.spec.ok() ? "ok" : r.spec.diagnostic)
              << "\nmax depth:        " << r.max_depth << " (4f+5 = "
              << 4 * a.f + 5 << ")"
              << "\nmax refinements:  " << r.max_refinements << " (2f = "
              << 2 * a.f << ")"
              << "\nmsgs/proc (max):  " << r.max_msgs_per_correct
              << "\nbytes/proc (max): " << r.max_bytes_per_correct
              << "\ntotal messages:   " << r.total_msgs << "\n";
    return verdict(r.completed && r.spec.ok());
  }
  if (a.protocol == "faleiro") {
    harness::FaleiroScenario sc;
    sc.n = a.n;
    sc.f = (a.n - 1) / 2;
    sc.crash_count = a.crashes;
    sc.byz_lying_acker = a.byz_lying_acker;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    sc.submissions_per_proc = a.submissions;
    const auto r = harness::run_faleiro(sc);
    std::cout << "completed:        " << (r.completed ? "yes" : "NO")
              << "\nspec:             "
              << (r.spec.ok() ? "ok" : r.spec.diagnostic)
              << "\ntotal decisions:  " << r.total_decisions
              << "\nmsgs/decision:    " << r.msgs_per_decision_per_proposer
              << "\ntotal messages:   " << r.total_msgs << "\n";
    // For the Byzantine demo the "expected" outcome is the violation.
    if (a.byz_lying_acker) {
      std::cout << "\n(byz-lying-acker: a comparability VIOLATION is the "
                   "expected Theorem 1 outcome)\n";
      return 0;
    }
    return verdict(r.completed && r.spec.ok());
  }
  if (a.protocol == "rsm") {
    harness::RsmScenario sc;
    sc.n = a.n;
    sc.f = a.f;
    sc.byz_replicas = a.byz_replicas;
    sc.with_byz_client = a.byz_client;
    sc.num_clients = a.clients;
    sc.ops_per_client = a.ops;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    const auto r = harness::run_rsm(sc);
    std::cout << "completed:        " << (r.completed ? "yes" : "NO")
              << "\nproperties:       "
              << (r.check.ok() ? "all hold" : r.check.diagnostic)
              << "\nops completed:    " << r.ops_completed
              << "\nmean upd latency: " << r.mean_update_latency
              << "\nmean read latency:" << r.mean_read_latency
              << "\nthroughput:       " << r.ops_per_ktime << " ops/ktime"
              << "\ntotal messages:   " << r.total_msgs << "\n";
    return verdict(r.completed && r.check.ok());
  }
  usage("unknown protocol");
}
