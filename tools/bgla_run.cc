// bgla_run — command-line scenario runner.
//
// Runs any protocol of the library under any adversary/schedule/seed and
// prints the executable-spec verdict plus the run's measurements. Useful
// for exploring configurations beyond what the benches sweep, and for
// reproducing a failing test case from its (n, f, adversary, sched, seed)
// coordinates.
//
//   bgla_run --protocol wts   --n 7 --f 2 --adversary equivocator --seed 3
//   bgla_run --protocol gwts --n 10 --f 3 --adversary round-rusher
//            --decisions 6 --sched jitter
//   bgla_run --protocol rsm   --n 4 --f 1 --byz-replicas 1 --byz-client
//   bgla_run --protocol faleiro --n 3 --byz-lying-acker --sched targeted
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "harness/scenario.h"
#include "obs/instrument.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/flags.h"

using namespace bgla;
using harness::Adversary;
using harness::Sched;

namespace {

struct Args {
  std::string protocol = "wts";
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t byz_count = 0xffffffff;  // default: = f
  Adversary adversary = Adversary::kNone;
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint32_t decisions = 4;
  std::uint32_t submissions = 3;
  std::uint32_t clients = 2;
  std::uint32_t ops = 4;
  std::uint32_t byz_replicas = 0;
  bool byz_client = false;
  bool byz_lying_acker = false;
  std::uint32_t crashes = 0;
  bool trace = false;
  bool trace_rb = false;
  bool signed_rb = false;
  std::string trace_file;
  std::string metrics_json;
};

util::FlagSet make_flags(Args& a, std::string& adversary,
                         std::string& sched) {
  util::FlagSet flags("bgla_run");
  flags.add_string("protocol", &a.protocol,
                   "wts | gwts | sbs | gsbs | faleiro | rsm");
  flags.add_u32("n", &a.n, "number of protocol processes (replicas)");
  flags.add_u32("f", &a.f, "resilience parameter");
  flags.add_u32("byz-count", &a.byz_count,
                "actual adversaries instantiated (default: f)");
  flags.add_string("adversary", &adversary,
                   "none | mute | equivocator | invalid-value | "
                   "stale-nacker | lying-acker | round-rusher | flooder");
  flags.add_string("sched", &sched, "fixed | uniform | targeted | jitter");
  flags.add_u64("seed", &a.seed, "RNG seed (runs are fully deterministic)");
  flags.add_u32("decisions", &a.decisions,
                "GLA decision target per process (gwts/gsbs)");
  flags.add_u32("submissions", &a.submissions,
                "input values per process (gwts/gsbs/faleiro)");
  flags.add_u32("clients", &a.clients, "RSM client count");
  flags.add_u32("ops", &a.ops, "RSM operations per client");
  flags.add_u32("byz-replicas", &a.byz_replicas,
                "RSM fake-decider replicas");
  flags.add_bool("byz-client", &a.byz_client,
                 "add a Byzantine RSM client");
  flags.add_bool("byz-lying-acker", &a.byz_lying_acker,
                 "Faleiro: add the T7 lying acceptor");
  flags.add_u32("crashes", &a.crashes, "Faleiro: processes crashed mid-run");
  flags.add_bool("signed-rb", &a.signed_rb,
                 "use the certificate RB (signatures) in gwts");
  flags.add_bool("trace", &a.trace,
                 "print every delivered message (stderr)");
  flags.add_bool("trace-rb", &a.trace_rb,
                 "include reliable-broadcast internals");
  flags.add_string("trace-file", &a.trace_file,
                   "write the JSONL protocol trace (tools/bgla_trace reads "
                   "it) to this file");
  flags.add_string("metrics-json", &a.metrics_json,
                   "write a final metrics snapshot (JSON) to this file");
  return flags;
}

Args parse(int argc, char** argv) {
  Args a;
  std::string adversary = "none";
  std::string sched = "uniform";
  util::FlagSet flags = make_flags(a, adversary, sched);
  flags.parse_or_exit(argc, argv);

  static const std::map<std::string, Adversary> adversaries = {
      {"none", Adversary::kNone},
      {"mute", Adversary::kMute},
      {"equivocator", Adversary::kEquivocator},
      {"invalid-value", Adversary::kInvalidValue},
      {"stale-nacker", Adversary::kStaleNacker},
      {"lying-acker", Adversary::kLyingAcker},
      {"round-rusher", Adversary::kRoundRusher},
      {"flooder", Adversary::kFlooder},
  };
  const auto ait = adversaries.find(adversary);
  if (ait == adversaries.end()) flags.fail("unknown adversary");
  a.adversary = ait->second;

  static const std::map<std::string, Sched> scheds = {
      {"fixed", Sched::kFixed},
      {"uniform", Sched::kUniform},
      {"targeted", Sched::kTargeted},
      {"jitter", Sched::kJitter},
  };
  const auto sit = scheds.find(sched);
  if (sit == scheds.end()) flags.fail("unknown schedule");
  a.sched = sit->second;

  if (a.trace_rb) a.trace = true;
  if (a.byz_count == 0xffffffff) a.byz_count = a.f;
  return a;
}

void print_header(const Args& a) {
  std::cout << "protocol=" << a.protocol << " n=" << a.n << " f=" << a.f
            << " adversary=" << harness::adversary_name(a.adversary)
            << " sched=" << harness::sched_name(a.sched)
            << " seed=" << a.seed << "\n\n";
}

int verdict(bool ok) {
  std::cout << "\nverdict: " << (ok ? "OK" : "SPEC VIOLATION / INCOMPLETE")
            << "\n";
  return ok ? 0 : 1;
}

/// Observability sinks for the run, drained on scope exit (every protocol
/// branch returns directly, so the destructor is the single exit path).
struct ObsSinks {
  obs::Registry registry;
  std::unique_ptr<obs::TraceWriter> trace;
  std::unique_ptr<obs::Instrument> instrument;
  std::string metrics_json;

  explicit ObsSinks(const Args& a) : metrics_json(a.metrics_json) {
    if (!a.trace_file.empty()) {
      obs::TraceWriter::Options topt;
      topt.path = a.trace_file;
      trace = std::make_unique<obs::TraceWriter>(topt);
    }
    if (trace != nullptr || !metrics_json.empty()) {
      instrument = std::make_unique<obs::Instrument>(&registry, trace.get());
      if (trace != nullptr) {
        // One synthetic node_start carries the deployment coordinates so
        // the analyzer can check bounds without extra flags.
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kNodeStart;
        ev.node = 0;
        trace->record(std::move(ev.with("protocol", a.protocol)
                                    .with("n", a.n)
                                    .with("f", a.f)));
      }
    }
  }

  ~ObsSinks() {
    if (trace != nullptr) {
      trace->flush();
      if (trace->dropped() > 0) {
        std::cerr << "trace: ring overflow dropped " << trace->dropped()
                  << " event(s)\n";
      }
    }
    if (!metrics_json.empty()) {
      std::ofstream out(metrics_json);
      if (!out) {
        std::cerr << "error: cannot write metrics to '" << metrics_json
                  << "'\n";
      } else {
        out << registry.snapshot().to_json() << "\n";
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  print_header(a);

  ObsSinks obs_sinks(a);
  obs::Instrument* const instr = obs_sinks.instrument.get();

  if (a.protocol == "wts") {
    harness::WtsScenario sc;
    sc.n = a.n;
    sc.f = a.f;
    sc.byz_count = a.byz_count;
    sc.adversary = a.adversary;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    sc.instrument = instr;
    const auto r = harness::run_wts(sc);
    std::cout << "completed:        " << (r.completed ? "yes" : "NO")
              << "\nspec:             "
              << (r.spec.ok() ? "ok" : r.spec.diagnostic)
              << "\nmax depth:        " << r.max_depth << " (2f+5 = "
              << 2 * a.f + 5 << ", 3f+5 = " << 3 * a.f + 5 << ")"
              << "\nmean depth:       " << r.mean_depth
              << "\nmax refinements:  " << r.max_refinements << " (f = "
              << a.f << ")"
              << "\nmsgs/proc (max):  " << r.max_msgs_per_correct
              << "\nbytes/proc (max): " << r.max_bytes_per_correct
              << "\ntotal messages:   " << r.total_msgs
              << "\nend time:         " << r.end_time << "\n";
    return verdict(r.completed && r.spec.ok());
  }
  if (a.protocol == "gwts" || a.protocol == "gsbs") {
    auto print = [&](const auto& r) {
      std::cout << "completed:        " << (r.completed ? "yes" : "NO")
                << "\nspec:             "
                << (r.spec.ok() ? "ok" : r.spec.diagnostic)
                << "\ntotal decisions:  " << r.total_decisions
                << "\nmsgs/decision:    " << r.msgs_per_decision_per_proposer
                << "\nmax round refines:" << r.max_round_refinements
                << "\ntotal messages:   " << r.total_msgs
                << "\nend time:         " << r.end_time << "\n";
      return verdict(r.completed && r.spec.ok());
    };
    if (a.protocol == "gwts") {
      harness::GwtsScenario sc;
      sc.n = a.n;
      sc.f = a.f;
      sc.byz_count = a.byz_count;
      sc.adversary = a.adversary;
      sc.sched = a.sched;
      sc.seed = a.seed;
      sc.trace = a.trace;
      sc.trace_broadcast = a.trace_rb;
    sc.instrument = instr;
      sc.target_decisions = a.decisions;
      sc.submissions_per_proc = a.submissions;
      sc.signed_rb = a.signed_rb;
      return print(harness::run_gwts(sc));
    }
    harness::GsbsScenario sc;
    sc.n = a.n;
    sc.f = a.f;
    sc.byz_count = a.byz_count;
    sc.adversary = a.adversary;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    sc.instrument = instr;
    sc.target_decisions = a.decisions;
    sc.submissions_per_proc = a.submissions;
    return print(harness::run_gsbs(sc));
  }
  if (a.protocol == "sbs") {
    harness::SbsScenario sc;
    sc.n = a.n;
    sc.f = a.f;
    sc.byz_count = a.byz_count;
    sc.adversary = a.adversary;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    sc.instrument = instr;
    const auto r = harness::run_sbs(sc);
    std::cout << "completed:        " << (r.completed ? "yes" : "NO")
              << "\nspec:             "
              << (r.spec.ok() ? "ok" : r.spec.diagnostic)
              << "\nmax depth:        " << r.max_depth << " (4f+5 = "
              << 4 * a.f + 5 << ")"
              << "\nmax refinements:  " << r.max_refinements << " (2f = "
              << 2 * a.f << ")"
              << "\nmsgs/proc (max):  " << r.max_msgs_per_correct
              << "\nbytes/proc (max): " << r.max_bytes_per_correct
              << "\ntotal messages:   " << r.total_msgs << "\n";
    return verdict(r.completed && r.spec.ok());
  }
  if (a.protocol == "faleiro") {
    harness::FaleiroScenario sc;
    sc.n = a.n;
    sc.f = (a.n - 1) / 2;
    sc.crash_count = a.crashes;
    sc.byz_lying_acker = a.byz_lying_acker;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    sc.instrument = instr;
    sc.submissions_per_proc = a.submissions;
    const auto r = harness::run_faleiro(sc);
    std::cout << "completed:        " << (r.completed ? "yes" : "NO")
              << "\nspec:             "
              << (r.spec.ok() ? "ok" : r.spec.diagnostic)
              << "\ntotal decisions:  " << r.total_decisions
              << "\nmsgs/decision:    " << r.msgs_per_decision_per_proposer
              << "\ntotal messages:   " << r.total_msgs << "\n";
    // For the Byzantine demo the "expected" outcome is the violation.
    if (a.byz_lying_acker) {
      std::cout << "\n(byz-lying-acker: a comparability VIOLATION is the "
                   "expected Theorem 1 outcome)\n";
      return 0;
    }
    return verdict(r.completed && r.spec.ok());
  }
  if (a.protocol == "rsm") {
    harness::RsmScenario sc;
    sc.n = a.n;
    sc.f = a.f;
    sc.byz_replicas = a.byz_replicas;
    sc.with_byz_client = a.byz_client;
    sc.num_clients = a.clients;
    sc.ops_per_client = a.ops;
    sc.sched = a.sched;
    sc.seed = a.seed;
    sc.trace = a.trace;
    sc.trace_broadcast = a.trace_rb;
    sc.instrument = instr;
    const auto r = harness::run_rsm(sc);
    std::cout << "completed:        " << (r.completed ? "yes" : "NO")
              << "\nproperties:       "
              << (r.check.ok() ? "all hold" : r.check.diagnostic)
              << "\nops completed:    " << r.ops_completed
              << "\nmean upd latency: " << r.mean_update_latency
              << "\nmean read latency:" << r.mean_read_latency
              << "\nthroughput:       " << r.ops_per_ktime << " ops/ktime"
              << "\ntotal messages:   " << r.total_msgs << "\n";
    return verdict(r.completed && r.check.ok());
  }
  std::cerr << "error: unknown protocol '" << a.protocol << "'\n";
  return 2;
}
