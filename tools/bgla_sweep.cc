// bgla_sweep — CSV emitter for the paper-reproduction curves.
//
// Prints machine-readable sweeps (one row per configuration × seed) so the
// EXPERIMENTS.md tables can be re-plotted with any tool:
//
//   bgla_sweep --experiment t1 --seeds 10 > t1.csv
//
// Experiments: t1 (WTS delay depths), t2 (WTS messages vs n),
// t4 (SbS vs WTS messages/bytes), t6 (protocol comparison per decision).
//
// Independent (config × seed) simulations are fanned across a thread pool
// (--jobs N, default: hardware concurrency). Each job owns its Network,
// SignatureAuthority and RNG, so per-seed results are bit-identical to a
// serial sweep; rows are collected by job index and printed in the same
// order regardless of completion order.
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace bgla;
using harness::Adversary;
using harness::Sched;

namespace {

using Job = std::function<std::string()>;

/// Runs the jobs on `workers` threads and prints their rows in job order.
void run_jobs(const std::vector<Job>& jobs, std::size_t workers) {
  util::ThreadPool pool(workers);
  const auto rows = util::parallel_for_indexed<std::string>(
      pool, jobs.size(), [&jobs](std::size_t i) { return jobs[i](); });
  for (const std::string& row : rows) std::cout << row;
}

int run_t1(int seeds, std::size_t workers) {
  std::cout << "experiment,n,f,adversary,sched,seed,max_depth,mean_depth,"
               "bound_paper,bound_impl,spec_ok\n";
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {4, 1}, {7, 2}, {10, 3}, {13, 4}, {16, 5}, {19, 6}};
  std::vector<Job> jobs;
  for (const auto& [n, f] : sizes) {
    for (Adversary adv :
         {Adversary::kNone, Adversary::kEquivocator,
          Adversary::kStaleNacker}) {
      for (Sched sched : {Sched::kFixed, Sched::kUniform, Sched::kJitter}) {
        for (int seed = 1; seed <= seeds; ++seed) {
          jobs.push_back([n = n, f = f, adv, sched, seed] {
            harness::WtsScenario sc;
            sc.n = n;
            sc.f = f;
            sc.byz_count = f;
            sc.adversary = adv;
            sc.sched = sched;
            sc.seed = static_cast<std::uint64_t>(seed);
            const auto rep = harness::run_wts(sc);
            std::ostringstream os;
            os << "t1," << n << "," << f << ","
               << harness::adversary_name(adv) << ","
               << harness::sched_name(sched) << "," << seed << ","
               << rep.max_depth << "," << rep.mean_depth << ","
               << 2 * f + 5 << "," << 3 * f + 5 << ","
               << (rep.completed && rep.spec.ok()) << "\n";
            return os.str();
          });
        }
      }
    }
  }
  run_jobs(jobs, workers);
  return 0;
}

int run_t2(int seeds, std::size_t workers) {
  std::cout << "experiment,n,f,seed,msgs_per_proc,bytes_per_proc,"
               "total_msgs,spec_ok\n";
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {4, 1}, {7, 2}, {10, 3}, {13, 4}, {16, 5}, {19, 6}, {25, 8}, {31, 10}};
  std::vector<Job> jobs;
  for (const auto& [n, f] : sizes) {
    for (int seed = 1; seed <= seeds; ++seed) {
      jobs.push_back([n = n, f = f, seed] {
        harness::WtsScenario sc;
        sc.n = n;
        sc.f = f;
        sc.byz_count = f;
        sc.adversary = Adversary::kStaleNacker;
        sc.seed = static_cast<std::uint64_t>(seed);
        const auto rep = harness::run_wts(sc);
        std::ostringstream os;
        os << "t2," << n << "," << f << "," << seed << ","
           << rep.max_msgs_per_correct << ","
           << rep.max_bytes_per_correct << "," << rep.total_msgs << ","
           << (rep.completed && rep.spec.ok()) << "\n";
        return os.str();
      });
    }
  }
  run_jobs(jobs, workers);
  return 0;
}

int run_t4(int seeds, std::size_t workers) {
  std::cout << "experiment,protocol,n,f,seed,msgs_per_proc,bytes_per_proc,"
               "max_depth,spec_ok\n";
  std::vector<Job> jobs;
  for (std::uint32_t n : {4u, 7u, 10u, 16u, 25u, 31u}) {
    for (int seed = 1; seed <= seeds; ++seed) {
      jobs.push_back([n, seed] {
        harness::WtsScenario w;
        w.n = n;
        w.f = 1;
        w.byz_count = 1;
        w.adversary = Adversary::kMute;
        w.seed = static_cast<std::uint64_t>(seed);
        const auto wr = harness::run_wts(w);
        std::ostringstream os;
        os << "t4,wts," << n << ",1," << seed << ","
           << wr.max_msgs_per_correct << ","
           << wr.max_bytes_per_correct << "," << wr.max_depth << ","
           << (wr.completed && wr.spec.ok()) << "\n";
        return os.str();
      });
      jobs.push_back([n, seed] {
        harness::SbsScenario s;
        s.n = n;
        s.f = 1;
        s.byz_count = 1;
        s.adversary = Adversary::kMute;
        s.seed = static_cast<std::uint64_t>(seed);
        const auto sr = harness::run_sbs(s);
        std::ostringstream os;
        os << "t4,sbs," << n << ",1," << seed << ","
           << sr.max_msgs_per_correct << ","
           << sr.max_bytes_per_correct << "," << sr.max_depth << ","
           << (sr.completed && sr.spec.ok()) << "\n";
        return os.str();
      });
    }
  }
  run_jobs(jobs, workers);
  return 0;
}

int run_t6(int seeds, std::size_t workers) {
  std::cout << "experiment,protocol,n,f,seed,msgs_per_decision,spec_ok\n";
  std::vector<Job> jobs;
  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    const std::uint32_t f = (n - 1) / 3;
    for (int seed = 1; seed <= seeds; ++seed) {
      jobs.push_back([n, seed] {
        harness::FaleiroScenario fsc;
        fsc.n = n;
        fsc.f = (n - 1) / 2;
        fsc.submissions_per_proc = 3;
        fsc.seed = static_cast<std::uint64_t>(seed);
        const auto fr = harness::run_faleiro(fsc);
        std::ostringstream os;
        os << "t6,faleiro," << n << ",0," << seed << ","
           << fr.msgs_per_decision_per_proposer << ","
           << fr.spec.ok() << "\n";
        return os.str();
      });
      jobs.push_back([n, f, seed] {
        harness::GwtsScenario g;
        g.n = n;
        g.f = f;
        g.target_decisions = 3;
        g.submissions_per_proc = 3;
        g.seed = static_cast<std::uint64_t>(seed);
        const auto gr = harness::run_gwts(g);
        std::ostringstream os;
        os << "t6,gwts," << n << "," << f << "," << seed << ","
           << gr.msgs_per_decision_per_proposer << "," << gr.spec.ok()
           << "\n";
        return os.str();
      });
      jobs.push_back([n, f, seed] {
        harness::GwtsScenario g;
        g.n = n;
        g.f = f;
        g.target_decisions = 3;
        g.submissions_per_proc = 3;
        g.seed = static_cast<std::uint64_t>(seed);
        g.signed_rb = true;
        const auto gc = harness::run_gwts(g);
        std::ostringstream os;
        os << "t6,gwts-certrb," << n << "," << f << "," << seed << ","
           << gc.msgs_per_decision_per_proposer << "," << gc.spec.ok()
           << "\n";
        return os.str();
      });
      jobs.push_back([n, f, seed] {
        harness::GsbsScenario s;
        s.n = n;
        s.f = f;
        s.target_decisions = 3;
        s.submissions_per_proc = 3;
        s.seed = static_cast<std::uint64_t>(seed);
        const auto sr = harness::run_gsbs(s);
        std::ostringstream os;
        os << "t6,gsbs," << n << "," << f << "," << seed << ","
           << sr.msgs_per_decision_per_proposer << "," << sr.spec.ok()
           << "\n";
        return os.str();
      });
    }
  }
  run_jobs(jobs, workers);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string experiment = "t1";
  std::uint32_t seeds = 5;
  std::size_t jobs = util::ThreadPool::default_workers();
  util::FlagSet flags("bgla_sweep");
  flags.add_string("experiment", &experiment, "t1 | t2 | t4 | t6");
  flags.add_u32("seeds", &seeds, "seeds per configuration");
  flags.add_size("jobs", &jobs, "worker threads (default: cores)");
  flags.parse_or_exit(argc, argv);
  if (experiment == "t1") return run_t1(seeds, jobs);
  if (experiment == "t2") return run_t2(seeds, jobs);
  if (experiment == "t4") return run_t4(seeds, jobs);
  if (experiment == "t6") return run_t6(seeds, jobs);
  std::cerr << "unknown experiment " << experiment << "\n";
  return 2;
}
