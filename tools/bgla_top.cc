// bgla_top — live cluster introspection over the bgla_node metrics ports.
//
// Polls each node's /metrics endpoint (the Prometheus text exposition the
// MetricsHttpServer serves) and renders a refreshing per-node table of
// throughput, queue depth and causal-span phase latencies:
//
//   bgla_top --port-base 9100 --n 5                # ports 9100..9104
//   bgla_top --port 9100 --port 9200 --interval-ms 500
//   bgla_top --port 9100 --iterations 1            # one sample (CI smoke)
//
// The phase columns come from the bgla_span_dur_us{phase="..."} histograms
// populated when the nodes run with --trace-spans; without span tracing
// they stay blank and the counter columns still work. A node whose port
// does not answer is shown as DOWN — bgla_top is a viewer, not a health
// checker; /healthz is there for machines.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/flags.h"

using namespace bgla;

namespace {

struct Args {
  std::vector<std::string> ports;   // explicit ports (repeatable)
  std::uint32_t port_base = 0;      // with --n: ports base..base+n-1
  std::uint32_t n = 0;
  std::string host = "127.0.0.1";
  std::uint32_t interval_ms = 1000;
  std::uint32_t iterations = 0;     // 0 = until interrupted
  bool no_clear = false;
  std::string raw;                  // fetch this path, print the raw body
};

Args parse(int argc, char** argv) {
  Args a;
  util::FlagSet flags("bgla_top",
                      "poll bgla_node /metrics endpoints and render a "
                      "refreshing phase-latency / queue-depth table");
  flags.add_string_list("port", &a.ports,
                        "node metrics port (repeatable)");
  flags.add_u32("port-base", &a.port_base,
                "first metrics port; with --n polls base..base+n-1");
  flags.add_u32("n", &a.n, "number of nodes (with --port-base)");
  flags.add_string("host", &a.host, "host the nodes listen on");
  flags.add_u32("interval-ms", &a.interval_ms, "poll interval");
  flags.add_u32("iterations", &a.iterations,
                "stop after this many polls (0 = run until interrupted)");
  flags.add_bool("no-clear", &a.no_clear,
                 "append samples instead of redrawing in place");
  flags.add_string("raw", &a.raw,
                   "fetch this path (e.g. /healthz or /spans) from every "
                   "port and print the raw body instead of the table");
  flags.parse_or_exit(argc, argv);
  if (a.ports.empty() && (a.port_base == 0 || a.n == 0)) {
    flags.fail("need --port ... or --port-base with --n");
  }
  return a;
}

/// One HTTP GET against host:port, returning the response body (empty on
/// any failure — connection refused IS the signal for a down node).
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: " + host +
      "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t w = ::send(fd, req.data() + off, req.size() - off, 0);
    if (w <= 0) {
      ::close(fd);
      return {};
    }
    off += static_cast<std::size_t>(w);
  }
  std::string resp;
  char buf[4096];
  ssize_t r;
  while ((r = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return {};
  return resp.substr(hdr_end + 4);
}

/// Parses Prometheus text exposition into full-series-name -> value
/// ("bgla_span_dur_us{phase=\"quorum\",quantile=\"0.99\"}" is one key).
std::map<std::string, double> parse_metrics(const std::string& body) {
  std::map<std::string, double> out;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // `name{labels} value` or `name value`; labels may embed spaces only
    // inside quoted values, which the exporter escapes, so the value is
    // everything after the last space.
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    const std::string name = line.substr(0, sp);
    try {
      out[name] = std::stod(line.substr(sp + 1));
    } catch (...) {
      // Non-numeric sample (NaN renderings etc.) — skip the line.
    }
  }
  return out;
}

double series(const std::map<std::string, double>& m,
              const std::string& name) {
  const auto it = m.find(name);
  return it == m.end() ? 0.0 : it->second;
}

std::string fmt_us(double us) {
  std::ostringstream os;
  os << std::fixed;
  if (us >= 1e6) {
    os << std::setprecision(1) << us / 1e6 << "s";
  } else if (us >= 1e3) {
    os << std::setprecision(1) << us / 1e3 << "ms";
  } else {
    os << std::setprecision(0) << us << "us";
  }
  return os.str();
}

/// "p50/p99" for one span phase, blank when the phase never fired.
std::string phase_cell(const std::map<std::string, double>& m,
                       const std::string& phase) {
  const std::string base = "bgla_span_dur_us{phase=\"" + phase + "\"";
  if (series(m, base + ",quantile=\"0.5\"}") == 0.0 &&
      series(m, base + ",quantile=\"0.99\"}") == 0.0) {
    const std::string count = "bgla_span_dur_us_count{phase=\"" + phase +
                              "\"}";
    if (series(m, count) == 0.0) return "-";
  }
  return fmt_us(series(m, base + ",quantile=\"0.5\"}")) + "/" +
         fmt_us(series(m, base + ",quantile=\"0.99\"}"));
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  std::vector<std::uint16_t> ports;
  for (const std::string& p : a.ports) {
    ports.push_back(static_cast<std::uint16_t>(std::stoul(p)));
  }
  for (std::uint32_t i = 0; i < a.n && a.port_base != 0; ++i) {
    ports.push_back(static_cast<std::uint16_t>(a.port_base + i));
  }

  bool any_sample = false;
  for (std::uint32_t tick = 0; a.iterations == 0 || tick < a.iterations;
       ++tick) {
    if (tick > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(a.interval_ms));
    }
    if (!a.raw.empty()) {
      for (const std::uint16_t port : ports) {
        const std::string body = http_get(a.host, port, a.raw);
        std::cout << "== " << a.host << ":" << port << a.raw << " ==\n";
        if (body.empty()) {
          std::cout << "DOWN\n";
        } else {
          any_sample = true;
          std::cout << body;
          if (body.back() != '\n') std::cout << "\n";
        }
      }
      continue;
    }
    std::ostringstream frame;
    frame << "bgla_top — " << ports.size() << " node(s), tick " << tick + 1
          << "\n"
          << "  port   decide  submit  queue  backpr  "
          << std::left << std::setw(14) << "enqueue" << std::setw(14)
          << "round" << std::setw(14) << "quorum" << std::setw(14)
          << "apply" << std::right << "\n";
    for (const std::uint16_t port : ports) {
      const std::string body = http_get(a.host, port, "/metrics");
      if (body.empty()) {
        frame << "  " << std::setw(5) << port << "  DOWN\n";
        continue;
      }
      any_sample = true;
      const auto m = parse_metrics(body);
      frame << "  " << std::setw(5) << port << std::setw(8)
            << static_cast<std::uint64_t>(
                   series(m, "bgla_proto_decides_total"))
            << std::setw(8)
            << static_cast<std::uint64_t>(
                   series(m, "bgla_proto_submitted_values_total"))
            << std::setw(7)
            << static_cast<std::int64_t>(
                   series(m, "bgla_proto_batch_queue_depth"))
            << std::setw(8)
            << static_cast<std::uint64_t>(
                   series(m, "bgla_proto_backpressure_total"))
            << "  " << std::left << std::setw(14)
            << phase_cell(m, "enqueue") << std::setw(14)
            << phase_cell(m, "round") << std::setw(14)
            << phase_cell(m, "quorum") << std::setw(14)
            << phase_cell(m, "apply") << std::right << "\n";
    }
    if (!a.no_clear && a.iterations != 1) {
      std::cout << "\x1b[2J\x1b[H";  // redraw in place
    }
    std::cout << frame.str() << std::flush;
  }
  // CI smoke usage (--iterations N) needs a truthful exit: sampling only
  // DOWN nodes means the endpoints were never actually exercised.
  return any_sample ? 0 : 1;
}
