// bgla_trace — offline analyzer for the schema-v1 JSONL protocol traces
// written by bgla_node / bgla_run (--trace-file) and the fault timeline
// written by bgla_nemesis (--trace).
//
// The analyzer merges the per-node files into one wall-clock-ordered
// event stream, reconstructs per-proposal timelines, and prints:
//   - a per-node activity table (proposals, acks, nacks, refinements,
//     round advances, decides, rejoins, messages sent)
//   - rounds-to-decision and messages-per-decision tables
//   - decide-latency quantiles (p50 / p90 / p99 / max)
//   - explicit PASS/FAIL verdicts for the paper's bounds, checked on the
//     live run: Theorem 3 (WTS decides within 2f+5 message delays, i.e.
//     every decision's refinement count r satisfies r <= f) and Theorem 8
//     (SbS within 4f+5, i.e. r <= 2f), plus the O(N)-messages-per-decision
//     claim (per-node messages per decision bounded linearly in n).
//   - with --faults: decisions-during-partition and recovery-latency
//     sections for nemesis campaigns.
//   - sharded runs: files carrying a ".shard<k>" name token (bgla_node
//     --shards writes one per shard) are grouped by shard, and the
//     refinement bound is re-verified PER SHARD — each shard is its own
//     GLA instance, so the bound must hold in every one of them.
//
// Over sockets there is no causal-depth instrumentation (that is a
// simulator concept), so the delay bounds are checked through the
// refinement counts the proofs bound them by: a decision with r
// refinements takes 2r+5 delays in WTS/GWTS (Thm 3) and 4f+5 total in SbS
// with r <= 2f (Thm 8). A refinement count past the bound is exactly a
// delay-bound violation.
//
// Any schema violation or bound failure makes the exit status non-zero,
// which is what the CI observability job keys on.
//
//   bgla_trace --input n0.trace.jsonl --input n1.trace.jsonl ...
//   bgla_trace --input 'run/*.trace.jsonl' --faults run/faults.jsonl
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <glob.h>

#include "obs/jsonl.h"
#include "obs/schema.h"
#include "obs/trace.h"
#include "util/flags.h"

using namespace bgla;

namespace {

struct Args {
  std::vector<std::string> inputs;  // node trace files (globs allowed)
  std::string faults;               // nemesis faults.jsonl
  std::string protocol;             // override (default: from node_start)
  std::uint32_t n = 0;              // override
  std::uint32_t f = 0xffffffff;     // override
  std::string json;                 // machine-readable summary
  bool timelines = false;           // print every per-proposal timeline
  std::uint32_t region_size = 0;    // >0: group nodes into WAN regions
  bool critical_path = false;       // span-merge critical-path analysis
  std::uint32_t top_k = 5;          // slowest commands to print in full
};

Args parse(int argc, char** argv) {
  Args a;
  util::FlagSet flags(
      "bgla_trace",
      "merge JSONL protocol traces and check the paper's bounds");
  flags.add_string_list("input", &a.inputs,
                        "node trace file (repeatable; globs allowed)");
  flags.add_string("faults", &a.faults,
                   "bgla_nemesis faults.jsonl fault timeline");
  flags.add_string("protocol", &a.protocol,
                   "override the protocol recorded in node_start");
  flags.add_u32("n", &a.n, "override the cluster size");
  flags.add_u32("f", &a.f, "override the resilience parameter");
  flags.add_string("json", &a.json, "write a JSON summary to this file");
  flags.add_bool("timelines", &a.timelines,
                 "print every reconstructed per-proposal timeline");
  flags.add_u32("region-size", &a.region_size,
                "group nodes into WAN regions of this size (region of id = "
                "id / region-size) and print per-region decide-latency "
                "percentiles; 0 = off");
  flags.add_bool("critical-path", &a.critical_path,
                 "merge the schema-v2 causal spans into per-command "
                 "critical paths: per-phase latency attribution, "
                 "completeness gate (>=99% of decided commands must "
                 "reconstruct), top-k slowest commands with span trees");
  flags.add_u32("top-k", &a.top_k,
                "slowest commands to print with full span trees "
                "(--critical-path)");
  flags.parse_or_exit(argc, argv);
  if (a.inputs.empty()) flags.fail("at least one --input is required");
  return a;
}

/// Expands shell-style globs so `--input 'run/*.jsonl'` works even when
/// the shell passed the pattern through unexpanded.
std::vector<std::string> expand_inputs(const std::vector<std::string>& in) {
  std::vector<std::string> out;
  for (const std::string& pattern : in) {
    if (pattern.find_first_of("*?[") == std::string::npos) {
      out.push_back(pattern);
      continue;
    }
    glob_t g{};
    if (::glob(pattern.c_str(), 0, nullptr, &g) == 0) {
      for (std::size_t i = 0; i < g.gl_pathc; ++i) {
        out.emplace_back(g.gl_pathv[i]);
      }
    }
    ::globfree(&g);
  }
  return out;
}

struct Ev {
  obs::EventKind kind = obs::EventKind::kNodeStart;
  std::uint64_t node = 0;
  std::uint64_t inc = 0;
  std::uint64_t wall_us = 0;
  std::int32_t shard = -1;  // from the file's .shard<k> token; -1 = none
  obs::FlatJson fields;

  std::uint64_t u(const char* key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? 0 : it->second.u64;
  }
  std::string s(const char* key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? std::string() : it->second.str;
  }
};

/// Sharded bgla_node runs write one trace file per shard next to the
/// node's own, tagged with a ".shard<k>" filename token — that token is
/// the shard id, and it groups the per-shard spec verdicts below.
std::int32_t shard_from_path(const std::string& path) {
  const std::size_t pos = path.rfind(".shard");
  if (pos == std::string::npos) return -1;
  std::size_t i = pos + 6;
  if (i >= path.size() || !std::isdigit(path[i])) return -1;
  std::int32_t shard = 0;
  for (; i < path.size() && std::isdigit(path[i]); ++i) {
    shard = shard * 10 + (path[i] - '0');
  }
  return shard;
}

/// Reads and validates one JSONL file; schema violations are printed and
/// counted, valid lines become events.
std::size_t load_file(const std::string& path, std::vector<Ev>* out) {
  const std::int32_t shard = shard_from_path(path);
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return 1;
  }
  std::size_t violations = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    obs::FlatJson obj;
    std::string err;
    if (!obs::validate_trace_jsonl(line, line_no, &obj, &err)) {
      std::cerr << "schema violation: " << path << ":" << line_no << ": "
                << err << "\n";
      ++violations;
      continue;
    }
    Ev ev;
    ev.kind = static_cast<obs::EventKind>(
        obs::kind_index_from_name(obj.at("kind").str));
    ev.node = obj.at("node").u64;
    ev.inc = obj.at("inc").u64;
    ev.wall_us = obj.at("wall_us").u64;
    ev.shard = shard;
    ev.fields = std::move(obj);
    out->push_back(std::move(ev));
  }
  return violations;
}

struct Quantiles {
  std::uint64_t p50 = 0, p90 = 0, p99 = 0, max = 0;
  std::size_t count = 0;
};

Quantiles quantiles(std::vector<std::uint64_t> v) {
  Quantiles q;
  q.count = v.size();
  if (v.empty()) return q;
  std::sort(v.begin(), v.end());
  const auto at = [&v](double p) {
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
  };
  q.p50 = at(0.50);
  q.p90 = at(0.90);
  q.p99 = at(0.99);
  q.max = v.back();
  return q;
}

struct PerNode {
  std::uint64_t proposals = 0, acks = 0, nacks = 0, refines = 0;
  std::uint64_t round_advances = 0, decides = 0, rejoins = 0;
  std::uint64_t retransmits = 0;
  // Ingress batching (batch_flush events).
  std::uint64_t batch_flushes = 0, batch_values = 0;
  std::uint64_t batch_max = 0, queue_depth_max = 0;
  // From node_final (the registry totals, authoritative for msg counts).
  bool has_final = false;
  std::uint64_t final_decided = 0, final_msgs = 0, final_refinements = 0;
};

struct Decide {
  std::uint64_t node = 0, proposal = 0, round = 0, refinements = 0;
  std::uint64_t latency_us = 0, wall_us = 0;
  std::int32_t shard = -1;
};

struct Verdict {
  std::string name;
  bool pass = false;
  std::string detail;
};

void print_verdict(const Verdict& v) {
  std::cout << "  [" << (v.pass ? "PASS" : "FAIL") << "] " << v.name
            << ": " << v.detail << "\n";
}

std::string fmt_us(std::uint64_t us) {
  std::ostringstream os;
  if (us >= 1000000) {
    os << std::fixed << std::setprecision(2)
       << static_cast<double>(us) / 1e6 << "s";
  } else if (us >= 1000) {
    os << std::fixed << std::setprecision(2)
       << static_cast<double>(us) / 1e3 << "ms";
  } else {
    os << us << "us";
  }
  return os.str();
}

// ---- causal span merge (--critical-path) ---------------------------------
//
// Schema-v2 "span" events carry {trace, span, parent, phase, dur_us} plus
// one phase-specific extra. The merge groups spans by trace id and joins
// the two trace families the protocols emit:
//   - command traces: rooted at a "submit" span on the submitting node;
//     the one-shot protocols (WTS/SbS) hang "round"/"quorum" children
//     directly off it, the generalized ones hang an "enqueue" child whose
//     "round" extra names the batch round the command rode into.
//   - round traces: rooted at a "round" span (per-round in the generalized
//     protocols), with a "quorum" child measuring propose -> decide.
// A command's critical path is complete when its trace either carries the
// decide evidence itself (quorum or apply span) or its enqueue round joins
// a decided round trace on the same node (the round may have merged the
// batch upward, so any decided round >= the enqueue round completes it).

struct SpanEv {
  std::uint64_t trace = 0, span = 0, parent = 0, dur_us = 0;
  std::uint64_t node = 0, wall_us = 0, extra = 0;
  std::int32_t shard = -1;
  std::string phase;
};

struct SpanTrace {
  std::vector<SpanEv> spans;
  std::uint64_t node = 0;   // node of the root span
  std::int32_t shard = -1;  // from the file the root came from
  bool has_submit = false, has_round = false, has_quorum = false;
  bool has_apply = false, has_enqueue = false, has_backpressure = false;
  std::uint64_t round_no = 0;     // "round" extra of the round span
  std::uint64_t enqueue_round = 0;  // max "round" extra of enqueue spans
  std::uint64_t quorum_dur = 0, round_dur = 0, enqueue_dur = 0;
  std::uint64_t apply_dur = 0;
};

struct CommandPath {
  std::uint64_t trace = 0;
  std::uint64_t latency_us = 0;  // end-to-end attribution (see below)
  bool complete = false;
  std::uint64_t node = 0;
  std::int32_t shard = -1;
  std::vector<SpanEv> spans;  // owned copy, filled for the top-k only
};

struct CriticalPathReport {
  std::size_t span_events = 0;
  std::size_t commands = 0;      // decided-command denominator
  std::size_t complete = 0;
  std::size_t backpressured = 0;  // nacked-only traces (excluded)
  double complete_frac = 1.0;
  std::map<std::string, Quantiles> phase_q;  // per-phase dur quantiles
  std::map<std::int32_t, Quantiles> shard_q;  // command latency per shard
  std::map<std::uint64_t, Quantiles> region_q;  // ... per region
  std::vector<CommandPath> top;  // slowest first
};

void print_span_tree(const std::vector<SpanEv>& spans, std::uint64_t root,
                     std::size_t depth) {
  for (const SpanEv& s : spans) {
    if (s.parent != root) continue;
    std::cout << "      " << std::string(depth * 2, ' ') << s.phase << "@n"
              << s.node << " dur=" << fmt_us(s.dur_us);
    if (s.phase == "enqueue" || s.phase == "round") {
      std::cout << " round=" << s.extra;
    } else if (s.phase == "ack" || s.phase == "retransmit") {
      std::cout << " peer=" << s.extra;
    } else if (s.phase == "route") {
      std::cout << " shard=" << s.extra;
    }
    std::cout << "\n";
    if (s.span != root) print_span_tree(spans, s.span, depth + 1);
  }
}

CriticalPathReport analyze_critical_path(const std::vector<Ev>& events,
                                         std::uint32_t region_size,
                                         std::uint32_t top_k) {
  CriticalPathReport rep;
  std::map<std::uint64_t, SpanTrace> traces;
  std::map<std::string, std::vector<std::uint64_t>> phase_durs;
  for (const Ev& ev : events) {
    if (ev.kind != obs::EventKind::kSpan) continue;
    ++rep.span_events;
    SpanEv s;
    s.trace = ev.u("trace");
    s.span = ev.u("span");
    s.parent = ev.u("parent");
    s.dur_us = ev.u("dur_us");
    s.node = ev.node;
    s.wall_us = ev.wall_us;
    s.shard = ev.shard;
    s.phase = ev.s("phase");
    // The one phase-specific extra rides under its own key.
    s.extra = ev.u("round") + ev.u("peer") + ev.u("shard");
    phase_durs[s.phase].push_back(s.dur_us);
    SpanTrace& tr = traces[s.trace];
    if (s.parent == 0) {
      tr.node = s.node;
      tr.shard = s.shard;
    }
    if (s.phase == "submit") tr.has_submit = true;
    if (s.phase == "round") {
      tr.has_round = true;
      tr.round_no = s.extra;
      tr.round_dur = std::max(tr.round_dur, s.dur_us);
    }
    if (s.phase == "quorum") {
      tr.has_quorum = true;
      tr.quorum_dur = std::max(tr.quorum_dur, s.dur_us);
    }
    if (s.phase == "apply") {
      tr.has_apply = true;
      tr.apply_dur = std::max(tr.apply_dur, s.dur_us);
    }
    if (s.phase == "enqueue") {
      tr.has_enqueue = true;
      tr.enqueue_round = std::max(tr.enqueue_round, s.extra);
      tr.enqueue_dur = std::max(tr.enqueue_dur, s.dur_us);
    }
    if (s.phase == "backpressure") tr.has_backpressure = true;
    tr.spans.push_back(std::move(s));
  }
  for (auto& [phase, durs] : phase_durs) {
    rep.phase_q[phase] = quantiles(std::move(durs));
  }

  // Decided-round index: node -> decided round traces, for the enqueue
  // join. A decided round on the node at or above the enqueue round
  // completes every command batched into it.
  struct RoundRef {
    std::uint64_t round = 0, quorum_dur = 0, round_dur = 0;
  };
  std::map<std::uint64_t, std::vector<RoundRef>> rounds_by_node;
  for (const auto& [id, tr] : traces) {
    if (!tr.has_round || !tr.has_quorum || tr.has_submit) continue;
    rounds_by_node[tr.node].push_back(
        RoundRef{tr.round_no, tr.quorum_dur, tr.round_dur});
  }

  std::vector<CommandPath> cmds;
  std::map<std::int32_t, std::vector<std::uint64_t>> shard_lat;
  std::map<std::uint64_t, std::vector<std::uint64_t>> region_lat;
  for (const auto& [id, tr] : traces) {
    if (!tr.has_submit) continue;
    if (tr.has_backpressure && !tr.has_enqueue && !tr.has_quorum &&
        !tr.has_apply) {
      // Nacked at the ingress queue and never re-admitted: the command was
      // never decided, so it does not count against completeness.
      ++rep.backpressured;
      continue;
    }
    CommandPath c;
    c.trace = id;
    c.node = tr.node;
    c.shard = tr.shard;
    const RoundRef* joined = nullptr;
    if (tr.has_enqueue) {
      const auto it = rounds_by_node.find(tr.node);
      if (it != rounds_by_node.end()) {
        for (const RoundRef& r : it->second) {
          if (r.round >= tr.enqueue_round &&
              (joined == nullptr || r.round < joined->round)) {
            joined = &r;
          }
        }
      }
    }
    c.complete = (tr.has_quorum) || tr.has_apply || joined != nullptr;
    if (tr.has_apply) {
      c.latency_us = tr.apply_dur;
    } else if (joined != nullptr) {
      c.latency_us = tr.enqueue_dur + joined->round_dur;
    } else if (tr.has_round) {
      c.latency_us = tr.round_dur;  // one-shot: round dur is end-to-end
    } else {
      c.latency_us = tr.quorum_dur;
    }
    ++rep.commands;
    if (c.complete) {
      ++rep.complete;
      if (c.shard >= 0) shard_lat[c.shard].push_back(c.latency_us);
      if (region_size > 0) {
        region_lat[c.node / region_size].push_back(c.latency_us);
      }
    }
    cmds.push_back(std::move(c));
  }
  rep.complete_frac =
      rep.commands == 0
          ? 1.0
          : static_cast<double>(rep.complete) /
                static_cast<double>(rep.commands);
  for (auto& [s, lat] : shard_lat) rep.shard_q[s] = quantiles(std::move(lat));
  for (auto& [r, lat] : region_lat) {
    rep.region_q[r] = quantiles(std::move(lat));
  }
  std::sort(cmds.begin(), cmds.end(),
            [](const CommandPath& x, const CommandPath& y) {
              return x.latency_us > y.latency_us;
            });
  if (cmds.size() > top_k) cmds.resize(top_k);
  for (CommandPath& c : cmds) c.spans = traces.at(c.trace).spans;
  rep.top = std::move(cmds);
  return rep;
}

void print_critical_path(const CriticalPathReport& rep) {
  std::cout << "\ncritical path (" << rep.span_events << " span event(s)):\n"
            << "  commands: " << rep.commands << " decided, " << rep.complete
            << " complete (" << std::fixed << std::setprecision(1)
            << rep.complete_frac * 100.0 << "%), " << rep.backpressured
            << " backpressure-nacked (excluded)\n";
  if (!rep.phase_q.empty()) {
    std::cout << "  per-phase latency attribution:\n"
              << "    phase          count      p50      p99      max\n";
    for (const auto& [phase, q] : rep.phase_q) {
      std::cout << "    " << std::left << std::setw(12) << phase
                << std::right << std::setw(9) << q.count << std::setw(9)
                << fmt_us(q.p50) << std::setw(9) << fmt_us(q.p99)
                << std::setw(9) << fmt_us(q.max) << "\n";
    }
  }
  for (const auto& [s, q] : rep.shard_q) {
    std::cout << "  shard " << s << ": " << q.count
              << " command(s), p50=" << fmt_us(q.p50)
              << " p99=" << fmt_us(q.p99) << " max=" << fmt_us(q.max)
              << "\n";
  }
  for (const auto& [r, q] : rep.region_q) {
    std::cout << "  region " << r << ": " << q.count
              << " command(s), p50=" << fmt_us(q.p50)
              << " p99=" << fmt_us(q.p99) << " max=" << fmt_us(q.max)
              << "\n";
  }
  if (!rep.top.empty()) {
    std::cout << "  slowest commands:\n";
    for (const CommandPath& c : rep.top) {
      std::cout << "    trace " << std::hex << c.trace << std::dec << " ("
                << fmt_us(c.latency_us) << ", "
                << (c.complete ? "complete" : "INCOMPLETE") << "):\n";
      print_span_tree(c.spans, 0, 0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  const std::vector<std::string> files = expand_inputs(a.inputs);
  if (files.empty()) {
    std::cerr << "error: no input files matched\n";
    return 2;
  }

  std::vector<Ev> events;
  std::size_t violations = 0;
  for (const std::string& path : files) {
    violations += load_file(path, &events);
  }
  if (!a.faults.empty()) violations += load_file(a.faults, &events);
  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& x, const Ev& y) {
                     return x.wall_us < y.wall_us;
                   });

  // ---- deployment coordinates: node_start events, overridable ----------
  std::string protocol = a.protocol;
  std::uint32_t n = a.n;
  std::uint32_t f = a.f;
  std::set<std::uint64_t> nodes_seen;
  for (const Ev& ev : events) {
    if (ev.kind == obs::EventKind::kFault) continue;  // driver pseudo-node
    nodes_seen.insert(ev.node);
    if (ev.kind != obs::EventKind::kNodeStart) continue;
    if (protocol.empty()) protocol = ev.s("protocol");
    if (n == 0) n = static_cast<std::uint32_t>(ev.u("n"));
    if (f == 0xffffffff) f = static_cast<std::uint32_t>(ev.u("f"));
  }
  if (f == 0xffffffff) f = 1;
  if (n == 0) n = static_cast<std::uint32_t>(nodes_seen.size());
  const bool sbs_family = protocol == "sbs" || protocol == "gsbs";
  const bool crash_family =
      protocol == "faleiro-la" || protocol == "faleiro";

  std::cout << "bgla_trace: " << events.size() << " event(s) from "
            << files.size() << " file(s), " << nodes_seen.size()
            << " node(s); protocol=" << (protocol.empty() ? "?" : protocol)
            << " n=" << n << " f=" << f << "\n\n";

  // ---- per-node accumulation -------------------------------------------
  std::map<std::uint64_t, PerNode> per_node;
  std::vector<Decide> decides;
  std::vector<std::uint64_t> rejoin_latencies;
  // (node, proposal) -> ordered event refs for --timelines.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<const Ev*>>
      timelines;

  for (const Ev& ev : events) {
    PerNode& pn = per_node[ev.node];
    switch (ev.kind) {
      case obs::EventKind::kPropose:
        ++pn.proposals;
        timelines[{ev.node, ev.u("proposal")}].push_back(&ev);
        break;
      case obs::EventKind::kAck: ++pn.acks; break;
      case obs::EventKind::kNack: ++pn.nacks; break;
      case obs::EventKind::kRefine:
        ++pn.refines;
        timelines[{ev.node, ev.u("proposal")}].push_back(&ev);
        break;
      case obs::EventKind::kRoundAdvance: ++pn.round_advances; break;
      case obs::EventKind::kDecide: {
        ++pn.decides;
        Decide d;
        d.node = ev.node;
        d.proposal = ev.u("proposal");
        d.round = ev.u("round");
        d.refinements = ev.u("refinements");
        d.latency_us = ev.u("latency_us");
        d.wall_us = ev.wall_us;
        d.shard = ev.shard;
        decides.push_back(d);
        timelines[{ev.node, d.proposal}].push_back(&ev);
        break;
      }
      case obs::EventKind::kRejoinStart: ++pn.rejoins; break;
      case obs::EventKind::kRejoinDone:
        rejoin_latencies.push_back(ev.u("latency_us"));
        break;
      case obs::EventKind::kRetransmit:
        pn.retransmits += ev.u("frames");
        break;
      case obs::EventKind::kBatchFlush:
        ++pn.batch_flushes;
        pn.batch_values += ev.u("batch_size");
        pn.batch_max = std::max(pn.batch_max, ev.u("batch_size"));
        pn.queue_depth_max =
            std::max(pn.queue_depth_max, ev.u("queue_depth"));
        break;
      case obs::EventKind::kNodeFinal:
        pn.has_final = true;
        pn.final_decided = ev.u("decided");
        pn.final_msgs = ev.u("msgs_sent");
        pn.final_refinements = ev.u("refinements");
        break;
      default: break;
    }
  }

  std::cout << "per-node activity:\n"
            << "  node  propose    ack   nack refine  round decide rejoin"
               "  retx   msgs\n";
  for (const auto& [id, pn] : per_node) {
    std::cout << "  " << std::setw(4) << id << std::setw(9) << pn.proposals
              << std::setw(7) << pn.acks << std::setw(7) << pn.nacks
              << std::setw(7) << pn.refines << std::setw(7)
              << pn.round_advances << std::setw(7) << pn.decides
              << std::setw(7) << pn.rejoins << std::setw(6)
              << pn.retransmits << std::setw(7)
              << (pn.has_final ? std::to_string(pn.final_msgs) : "?")
              << "\n";
  }

  // ---- rounds-to-decision / refinements / latency ----------------------
  std::vector<std::uint64_t> latencies, refinement_counts;
  std::map<std::uint64_t, std::uint64_t> refinement_histo;
  for (const Decide& d : decides) {
    latencies.push_back(d.latency_us);
    refinement_counts.push_back(d.refinements);
    ++refinement_histo[d.refinements];
  }
  std::cout << "\ndecisions: " << decides.size() << "\n";
  if (!decides.empty()) {
    std::cout << "  refinements per decision (r -> count):";
    for (const auto& [r, c] : refinement_histo) {
      std::cout << "  " << r << "->" << c;
    }
    const Quantiles lq = quantiles(latencies);
    std::cout << "\n  decide latency: p50=" << fmt_us(lq.p50)
              << " p90=" << fmt_us(lq.p90) << " p99=" << fmt_us(lq.p99)
              << " max=" << fmt_us(lq.max) << "\n";
  }

  // ---- per-region decide latency (WAN topologies, --region-size) -------
  // Region of node id = id / region_size, matching bgla_nemesis
  // --topology-mode regions. The spread between regions is the visible
  // cost of the emulated WAN: a region whose proposers keep colliding
  // with cross-region traffic decides later than one that mostly agrees
  // locally.
  std::map<std::uint64_t, Quantiles> region_latency;
  if (a.region_size > 0 && !decides.empty()) {
    std::map<std::uint64_t, std::vector<std::uint64_t>> by_region;
    for (const Decide& d : decides) {
      by_region[d.node / a.region_size].push_back(d.latency_us);
    }
    std::cout << "\nper-region decide latency (regions of " << a.region_size
              << "):\n"
              << "  region  decisions      p50      p90      p99      max\n";
    for (auto& [region, lat] : by_region) {
      const Quantiles rq = quantiles(std::move(lat));
      region_latency[region] = rq;
      std::cout << "  " << std::setw(6) << region << std::setw(11)
                << rq.count << std::setw(9) << fmt_us(rq.p50) << std::setw(9)
                << fmt_us(rq.p90) << std::setw(9) << fmt_us(rq.p99)
                << std::setw(9) << fmt_us(rq.max) << "\n";
    }
  }

  // ---- effective batch sizes (ingress batching, if enabled) ------------
  std::uint64_t total_flushes = 0, total_batched = 0;
  for (const auto& [id, pn] : per_node) {
    total_flushes += pn.batch_flushes;
    total_batched += pn.batch_values;
  }
  if (total_flushes > 0) {
    std::cout << "\ningress batching (" << total_flushes
              << " batch flush(es), " << total_batched << " value(s)):\n"
              << "  node  flushes  values  max_batch  max_queue  mean\n";
    for (const auto& [id, pn] : per_node) {
      if (pn.batch_flushes == 0) continue;
      std::cout << "  " << std::setw(4) << id << std::setw(9)
                << pn.batch_flushes << std::setw(8) << pn.batch_values
                << std::setw(11) << pn.batch_max << std::setw(11)
                << pn.queue_depth_max << std::setw(8) << std::fixed
                << std::setprecision(1)
                << static_cast<double>(pn.batch_values) /
                       static_cast<double>(pn.batch_flushes)
                << "\n";
    }
  }

  if (a.timelines) {
    std::cout << "\nper-proposal timelines (node/proposal):\n";
    for (const auto& [key, evs] : timelines) {
      std::cout << "  n" << key.first << "/p" << key.second << ":";
      const std::uint64_t t0 = evs.front()->wall_us;
      for (const Ev* ev : evs) {
        std::cout << " +" << fmt_us(ev->wall_us - t0) << " "
                  << obs::kind_name(ev->kind);
      }
      std::cout << "\n";
    }
  }

  // ---- critical-path span merge (--critical-path) ----------------------
  CriticalPathReport cp;
  if (a.critical_path) {
    cp = analyze_critical_path(events, a.region_size, a.top_k);
    print_critical_path(cp);
  }

  // ---- bound verdicts ---------------------------------------------------
  std::vector<Verdict> verdicts;

  if (a.critical_path) {
    // The tracing gate: on a traced run every decided command must
    // reconstruct into a complete causal span tree. 99% (not 100%) because
    // commands still in flight at shutdown legitimately lack their decide
    // evidence.
    Verdict v;
    v.name = "critical path: >=99% of decided commands reconstruct";
    v.pass = cp.commands == 0 || cp.complete_frac >= 0.99;
    std::ostringstream os;
    os << cp.complete << "/" << cp.commands << " complete ("
       << std::fixed << std::setprecision(1) << cp.complete_frac * 100.0
       << "%) from " << cp.span_events << " span(s)";
    if (cp.commands == 0) os << "; no command traces (skipped)";
    v.detail = os.str();
    verdicts.push_back(std::move(v));
  }

  {
    // Refinement bound <=> delay bound. Thm 3: a WTS decision with r
    // refinements takes 2r+5 delays, and r <= f, so 2f+5 bounds it.
    // Thm 8 (SbS): r <= 2f and the decision fits in 4f+5 delays. The
    // crash-stop baseline has no Byzantine bound; its lattice height
    // bounds r by the number of submitting processes, i.e. r < n.
    const std::uint64_t bound = sbs_family ? 2ull * f
                                : crash_family ? (n > 0 ? n - 1 : 0)
                                               : f;
    const char* label = sbs_family
                            ? "Thm 8: refinements <= 2f (decides in <= "
                              "4f+5 delays)"
                        : crash_family
                            ? "crash GLA: refinements < n"
                            : "Thm 3: refinements <= f (decides in <= "
                              "2f+5 delays)";
    std::uint64_t worst = 0;
    std::uint64_t over = 0;
    for (const Decide& d : decides) {
      worst = std::max(worst, d.refinements);
      if (d.refinements > bound) ++over;
    }
    Verdict v;
    v.name = label;
    v.pass = over == 0;
    std::ostringstream os;
    os << "max refinements " << worst << " vs bound " << bound << " over "
       << decides.size() << " decision(s)";
    if (over > 0) os << "; " << over << " VIOLATION(S)";
    v.detail = os.str();
    verdicts.push_back(std::move(v));
  }

  {
    // Message complexity. SbS/GSbS replace reliable broadcast with
    // signatures, so a proposal round costs O(n) messages per node and a
    // decision (1 + r rounds) stays within O(n*(1+r)) — the §8.2 claim.
    // WTS/GWTS disclose through Bracha RB, whose echo/ready phases cost
    // O(n^2) per round (the §6.4 claim is O(f*n^2) per decision). The
    // crash-stop baseline sends plain point-to-point rounds: O(n). The
    // factor absorbs acceptor-side replies to the other proposers,
    // round-advance traffic, and each rejoin's catch-up re-proposal.
    constexpr std::uint64_t kFactor = 16;
    // The RSM replica runs GWTS underneath, so it inherits the reliable-
    // broadcast O(n^2)-per-round message cost.
    const bool quadratic = protocol == "wts" || protocol == "gwts" ||
                           protocol == "rsm-replica";
    bool any = false;
    bool pass = true;
    std::uint64_t worst = 0, worst_node = 0, worst_allowed = 0;
    for (const auto& [id, pn] : per_node) {
      if (!pn.has_final || pn.final_decided == 0) continue;
      any = true;
      const std::uint64_t per_decision = pn.final_msgs / pn.final_decided;
      const std::uint64_t base =
          quadratic ? static_cast<std::uint64_t>(n) * n : n;
      const std::uint64_t allowed =
          kFactor * base * (1 + pn.final_refinements) * (1 + pn.rejoins);
      if (per_decision > allowed) pass = false;
      if (per_decision > worst) {
        worst = per_decision;
        worst_node = id;
        worst_allowed = allowed;
      }
    }
    Verdict v;
    v.name = quadratic ? "O(N^2) messages per decision per node (RB)"
                       : "O(N) messages per decision per node";
    v.pass = !any || pass;
    std::ostringstream os;
    if (!any) {
      os << "no node_final totals in the trace (skipped)";
    } else {
      os << "worst " << worst << " msgs/decision (node " << worst_node
         << ") vs allowance " << worst_allowed << " = " << kFactor << "*"
         << (quadratic ? "n^2" : "n") << "*(1+r)*(1+rejoins)";
    }
    v.detail = os.str();
    verdicts.push_back(std::move(v));
  }

  // ---- per-shard verdicts (sharded RSM: .shard<k> trace files) ---------
  // Each shard is an independent GLA instance, so the refinement bound
  // holds per shard, not just in aggregate — a wedged shard must not hide
  // behind its healthy siblings' decisions.
  std::set<std::int32_t> shards_present;
  for (const Ev& ev : events) {
    if (ev.shard >= 0) shards_present.insert(ev.shard);
  }
  if (!shards_present.empty()) {
    std::cout << "\nper-shard activity (" << shards_present.size()
              << " shard(s)):\n"
              << "  shard  decide  worst_r\n";
    for (const std::int32_t s : shards_present) {
      const std::uint64_t bound = f;  // per-shard GWTS: Thm 3, r <= f
      std::uint64_t dec = 0, worst = 0, over = 0;
      for (const Decide& d : decides) {
        if (d.shard != s) continue;
        ++dec;
        worst = std::max(worst, d.refinements);
        if (d.refinements > bound) ++over;
      }
      std::cout << "  " << std::setw(5) << s << std::setw(8) << dec
                << std::setw(9) << worst << "\n";
      Verdict v;
      v.name = "shard " + std::to_string(s) + ": refinements <= f";
      v.pass = over == 0;
      std::ostringstream os;
      os << "max refinements " << worst << " vs bound " << bound << " over "
         << dec << " decision(s)";
      if (over > 0) os << "; " << over << " VIOLATION(S)";
      v.detail = os.str();
      verdicts.push_back(std::move(v));
    }
  }

  // ---- nemesis sections -------------------------------------------------
  std::size_t decisions_in_partition = 0;
  bool have_partition = false;
  if (!a.faults.empty()) {
    std::cout << "\nfault timeline:\n";
    std::uint64_t part_start = 0;
    std::map<std::uint64_t, std::uint64_t> restart_wall;  // node -> wall
    std::vector<std::uint64_t> restart_recovery_us;
    for (const Ev& ev : events) {
      if (ev.kind != obs::EventKind::kFault) continue;
      const std::string desc = ev.s("fault");
      std::cout << "  +" << fmt_us(ev.wall_us - events.front().wall_us)
                << "  " << desc << "\n";
      std::istringstream ds(desc);
      std::string verb;
      std::uint64_t operand = 0;
      ds >> verb >> operand;
      if (verb == "partition_start") {
        have_partition = true;
        part_start = ev.wall_us;
      } else if (verb == "partition_end") {
        for (const Decide& d : decides) {
          if (d.wall_us >= part_start && d.wall_us <= ev.wall_us) {
            ++decisions_in_partition;
          }
        }
        part_start = 0;
      } else if (verb == "restart") {
        restart_wall[operand] = ev.wall_us;
      }
    }
    // Recovery latency per restart: fault wall time -> the node's next
    // rejoin_done (preferred) or first decide afterwards.
    for (const auto& [node, t0] : restart_wall) {
      std::uint64_t best = 0;
      for (const Ev& ev : events) {
        if (ev.node != node || ev.wall_us < t0) continue;
        if (ev.kind == obs::EventKind::kRejoinDone ||
            ev.kind == obs::EventKind::kDecide) {
          best = ev.wall_us - t0;
          break;
        }
      }
      if (best > 0) restart_recovery_us.push_back(best);
    }
    if (have_partition) {
      std::cout << "\ndecisions during partition window(s): "
                << decisions_in_partition << "\n";
    }
    if (!rejoin_latencies.empty()) {
      const Quantiles rq = quantiles(rejoin_latencies);
      std::cout << "rejoin catch-up latency: p50=" << fmt_us(rq.p50)
                << " p99=" << fmt_us(rq.p99) << " max=" << fmt_us(rq.max)
                << " (" << rq.count << " rejoin(s))\n";
    }
    if (!restart_recovery_us.empty()) {
      const Quantiles kq = quantiles(restart_recovery_us);
      std::cout << "restart -> recovered (rejoin_done/first decide): p50="
                << fmt_us(kq.p50) << " max=" << fmt_us(kq.max) << " ("
                << kq.count << " restart(s))\n";
    }
  }

  // ---- verdicts + exit --------------------------------------------------
  std::cout << "\nbound checks:\n";
  for (const Verdict& v : verdicts) print_verdict(v);
  if (violations > 0) {
    std::cout << "  [FAIL] schema: " << violations << " violation(s)\n";
  } else {
    std::cout << "  [PASS] schema: all " << events.size()
              << " line(s) valid\n";
  }

  bool ok = violations == 0;
  for (const Verdict& v : verdicts) ok = ok && v.pass;

  if (!a.json.empty()) {
    std::ofstream out(a.json);
    const Quantiles lq = quantiles(latencies);
    out << "{\"events\":" << events.size()
        << ",\"nodes\":" << nodes_seen.size()
        << ",\"protocol\":\"" << protocol << "\",\"n\":" << n
        << ",\"f\":" << f << ",\"decisions\":" << decides.size()
        << ",\"schema_violations\":" << violations
        << ",\"decide_latency_us\":{\"p50\":" << lq.p50
        << ",\"p90\":" << lq.p90 << ",\"p99\":" << lq.p99
        << ",\"max\":" << lq.max << "}"
        << ",\"max_refinements\":"
        << (refinement_counts.empty()
                ? 0
                : *std::max_element(refinement_counts.begin(),
                                    refinement_counts.end()))
        << ",\"shards\":" << shards_present.size()
        << ",\"regions\":[";
    {
      bool first = true;
      for (const auto& [region, rq] : region_latency) {
        if (!first) out << ",";
        first = false;
        out << "{\"region\":" << region << ",\"decisions\":" << rq.count
            << ",\"p50_us\":" << rq.p50 << ",\"p90_us\":" << rq.p90
            << ",\"p99_us\":" << rq.p99 << ",\"max_us\":" << rq.max << "}";
      }
    }
    out << "]";
    if (a.critical_path) {
      out << ",\"critical_path\":{\"spans\":" << cp.span_events
          << ",\"commands\":" << cp.commands
          << ",\"complete\":" << cp.complete
          << ",\"complete_frac\":" << cp.complete_frac
          << ",\"backpressured\":" << cp.backpressured << ",\"phases\":{";
      bool first = true;
      for (const auto& [phase, q] : cp.phase_q) {
        if (!first) out << ",";
        first = false;
        out << "\"" << phase << "\":{\"count\":" << q.count
            << ",\"p50_us\":" << q.p50 << ",\"p99_us\":" << q.p99
            << ",\"max_us\":" << q.max << "}";
      }
      out << "},\"shards\":{";
      first = true;
      for (const auto& [s, q] : cp.shard_q) {
        if (!first) out << ",";
        first = false;
        out << "\"" << s << "\":{\"count\":" << q.count
            << ",\"p50_us\":" << q.p50 << ",\"p99_us\":" << q.p99 << "}";
      }
      out << "},\"regions\":{";
      first = true;
      for (const auto& [r, q] : cp.region_q) {
        if (!first) out << ",";
        first = false;
        out << "\"" << r << "\":{\"count\":" << q.count
            << ",\"p50_us\":" << q.p50 << ",\"p99_us\":" << q.p99 << "}";
      }
      out << "},\"top\":[";
      first = true;
      for (const CommandPath& c : cp.top) {
        if (!first) out << ",";
        first = false;
        out << "{\"trace\":" << c.trace
            << ",\"latency_us\":" << c.latency_us << ",\"complete\":"
            << (c.complete ? "true" : "false") << ",\"spans\":"
            << c.spans.size() << "}";
      }
      out << "]}";
    }
    out << ",\"decisions_in_partition\":" << decisions_in_partition
        << ",\"batch_flushes\":" << total_flushes
        << ",\"mean_batch_size\":"
        << (total_flushes == 0
                ? 0.0
                : static_cast<double>(total_batched) /
                      static_cast<double>(total_flushes))
        << ",\"bounds\":[";
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"name\":\"" << verdicts[i].name << "\",\"pass\":"
          << (verdicts[i].pass ? "true" : "false") << "}";
    }
    out << "],\"ok\":" << (ok ? "true" : "false") << "}\n";
  }

  std::cout << "\n" << (ok ? "bgla_trace: OK" : "bgla_trace: FAILED")
            << "\n";
  return ok ? 0 : 1;
}
