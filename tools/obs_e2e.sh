#!/bin/sh
# Observability end-to-end check: run a real loopback TCP cluster with
# JSONL tracing AND causal span tracing on (fault-free nemesis campaign),
# poke the live introspection endpoints mid-run (/metrics and /healthz via
# bgla_top, so the check has no curl dependency), then feed the merged
# traces to bgla_trace --critical-path, which exits non-zero if any schema
# line, any of the paper's bounds (Thm 3 / Thm 8 refinement caps, message
# complexity), or the >=99% span-reconstruction gate is violated. The
# per-phase latency attribution lands in $WORKDIR/attribution.json for CI
# to upload.
#
# usage: obs_e2e.sh NEMESIS_BIN TRACE_BIN NODE_BIN TOP_BIN WORKDIR \
#          [nemesis args...]
set -eu

NEMESIS=$1
TRACE=$2
NODE=$3
TOP=$4
WORKDIR=$5
shift 5

rm -rf "$WORKDIR"

# Recover --n from the pass-through nemesis args so bgla_top knows how
# many metrics ports to poll (defaults match the nemesis default).
N=3
prev=""
for arg in "$@"; do
  if [ "$prev" = "--n" ]; then N="$arg"; fi
  prev="$arg"
done

# Per-invocation metrics port base keyed off the PID so parallel ctest
# instances don't collide on fixed ports.
PORT_BASE=$(( ($$ % 2000) * 16 + 20000 ))

"$NEMESIS" --node-bin "$NODE" --workdir "$WORKDIR" \
  --campaign none --trace --trace-spans \
  --metrics-port-base "$PORT_BASE" "$@" &
NEMESIS_PID=$!

# Mid-run introspection: wait for the endpoints to come up (nodes bind
# their metrics port after startup), then require one full /metrics table
# sample and one /healthz sweep. bgla_top exits 1 when every port is DOWN.
METRICS_OK=0
tries=0
while [ "$tries" -lt 30 ]; do
  if ! kill -0 "$NEMESIS_PID" 2>/dev/null; then
    break
  fi
  if "$TOP" --port-base "$PORT_BASE" --n "$N" --iterations 1; then
    METRICS_OK=1
    break
  fi
  tries=$((tries + 1))
  sleep 1
done
if [ "$METRICS_OK" -ne 1 ]; then
  echo "obs_e2e: /metrics never became reachable on ports $PORT_BASE..+$N" >&2
  kill "$NEMESIS_PID" 2>/dev/null || true
  wait "$NEMESIS_PID" 2>/dev/null || true
  exit 1
fi
"$TOP" --port-base "$PORT_BASE" --n "$N" --iterations 1 --raw /healthz
"$TOP" --port-base "$PORT_BASE" --n "$N" --iterations 1 --raw /spans \
  > "$WORKDIR/spans_midrun.txt"

NEMESIS_RC=0
wait "$NEMESIS_PID" || NEMESIS_RC=$?
if [ "$NEMESIS_RC" -ne 0 ]; then
  echo "obs_e2e: nemesis campaign failed (rc=$NEMESIS_RC)" >&2
  exit "$NEMESIS_RC"
fi

# bgla_trace expands the glob itself; keep it quoted.
"$TRACE" --input "$WORKDIR/node*.trace.jsonl" \
  --faults "$WORKDIR/faults.jsonl" \
  --critical-path --json "$WORKDIR/attribution.json"
