#!/bin/sh
# Observability end-to-end check: run a real loopback TCP cluster with
# JSONL tracing on (fault-free nemesis campaign), then feed the merged
# traces to bgla_trace, which exits non-zero if any schema line or any of
# the paper's bounds (Thm 3 / Thm 8 refinement caps, message complexity)
# is violated.
#
# usage: obs_e2e.sh NEMESIS_BIN TRACE_BIN NODE_BIN WORKDIR [nemesis args...]
set -eu

NEMESIS=$1
TRACE=$2
NODE=$3
WORKDIR=$4
shift 4

rm -rf "$WORKDIR"

"$NEMESIS" --node-bin "$NODE" --workdir "$WORKDIR" \
  --campaign none --trace "$@"

# bgla_trace expands the glob itself; keep it quoted.
"$TRACE" --input "$WORKDIR/node*.trace.jsonl" \
  --faults "$WORKDIR/faults.jsonl"
