#!/bin/sh
# Sharded RSM end-to-end smoke: a loopback TCP cluster of bgla_node
# rsm-replica processes, each multiplexing --shards GLA instances behind
# its Router, driven by bgla_load closed-loop clients. Checked two ways:
#   - bgla_load exits non-zero unless every client op completed; its JSON
#     report carries the per-target-shard op/retry counters;
#   - bgla_trace re-verifies the refinement bound PER SHARD over the
#     .shard<k> trace files every node wrote next to its own.
#
# usage: shard_e2e.sh NODE_BIN LOAD_BIN TRACE_BIN WORKDIR N F SHARDS CLIENTS OPS
set -eu

NODE=$1
LOAD=$2
TRACE=$3
WORKDIR=$4
N=$5
F=$6
SHARDS=$7
CLIENTS=$8
OPS=$9

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

# Loopback topology: replica ids 0..N-1, client ids N..N+CLIENTS-1. The
# PID-derived base port is cheap collision avoidance between CI runners.
BASE=$(( 9500 + $$ % 400 ))
TOTAL=$(( N + CLIENTS ))
: > "$WORKDIR/topology.txt"
i=0
while [ "$i" -lt "$TOTAL" ]; do
  echo "$i 127.0.0.1 $(( BASE + i ))" >> "$WORKDIR/topology.txt"
  i=$(( i + 1 ))
done

PIDS=""
i=0
while [ "$i" -lt "$N" ]; do
  "$NODE" --topology "$WORKDIR/topology.txt" --id "$i" \
    --protocol rsm-replica --n "$N" --f "$F" --shards "$SHARDS" \
    --data-dir "$WORKDIR/node$i" \
    --trace-file "$WORKDIR/node$i.trace.jsonl" \
    --run-ms 12000 --linger-ms 1000 > "$WORKDIR/node$i.log" 2>&1 &
  PIDS="$PIDS $!"
  i=$(( i + 1 ))
done

sleep 1
"$LOAD" --topology "$WORKDIR/topology.txt" --n "$N" --f "$F" \
  --clients "$CLIENTS" --ops "$OPS" --shards "$SHARDS" \
  --run-ms 10000 --json "$WORKDIR/load.json"

# Replicas serve until their deadline, then exit 0; any other status (or a
# crash) fails the script here.
for pid in $PIDS; do
  wait "$pid"
done

# Per-node traces plus the per-shard .shard<k> files; bgla_trace groups by
# the filename token and emits one refinement-bound verdict per shard.
"$TRACE" --input "$WORKDIR/node*.trace.jsonl*"
